//! Layer-grain memoization for tape refits: the "retime-many" fast path.
//!
//! A tape refit re-times a captured op stream one op at a time. Networks,
//! however, are full of *repeated timing patterns*: re-refitting the same
//! run (sweep grids revisit configs), and layers whose reduced op stream,
//! probe-tape slice and scoreboard entry state coincide. The timing
//! automaton is invariant under uniform time translation — every absolute
//! time (`now`, `unit_free`, the per-register scoreboard) enters only
//! through differences and `max` chains — so a layer's timing effect is a
//! pure function of
//!
//! 1. the **reduced signature** of its op region (only the fields the tape
//!    refit's timing actually reads — e.g. a `scalar_read`'s address is
//!    dropped because the tape supplies the serving level, while line
//!    *counts* of vector accesses are kept),
//! 2. the **probe-tape slice** it consumes,
//! 3. the **relative entry state** (scoreboard times relative to `now`, the
//!    fractional scalar accumulator, occupancy-split carry-overs, and — on
//!    hardware-prefetch configs — the recent-miss ring), and
//! 4. the machine configuration (the memo's owner scopes each
//!    [`LayerMemo`] to exactly one config + geometry).
//!
//! When two layer instances agree on all four, the second is *applied* as a
//! stored state delta instead of interpreted — bit-identical by
//! construction, and orders of magnitude faster. Mismatches simply miss the
//! memo and are interpreted (and stored); correctness never depends on the
//! hit rate.
//!
//! The one non-translation-invariant operation, the out-of-order window's
//! `saturating_sub` in `src_ready`, is guarded: effects are only stored and
//! applied when the entry `now` has passed the window, where the saturated
//! branch is provably never the issue-time maximum (see
//! `Machine::replay_with`).

use crate::machine::NUM_VREGS;
use crate::replay::{IndexedOp, ReplayOp, ReplayTrace};
use crate::stats::{KernelPhase, PhaseTimer, StallBreakdown, VpuStats};
use std::collections::HashMap;

/// 128-bit fold used for region signatures, tape slices and entry keys.
/// Non-cryptographic but well mixed; inputs are not adversarial (they come
/// from the simulator's own traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fold128 {
    a: u64,
    b: u64,
}

const MA: u64 = 0x9E37_79B9_7F4A_7C15;
const MB: u64 = 0xC2B2_AE3D_27D4_EB4F;

impl Fold128 {
    #[inline]
    pub fn new(seed: u64) -> Self {
        Fold128 { a: seed ^ MA, b: seed.wrapping_mul(MB) ^ MB }
    }

    #[inline]
    pub fn push(&mut self, v: u64) {
        let x = (self.a ^ v).wrapping_mul(MA);
        self.a = x ^ (x >> 32) ^ self.b.rotate_left(17);
        let y = (self.b ^ v).wrapping_mul(MB);
        self.b = y ^ (y >> 29);
    }

    /// Final avalanche.
    #[inline]
    pub fn finish(mut self) -> Self {
        self.push(0x5851_F42D_4C95_7F2D);
        self.push(0x1405_7B7E_F767_814F);
        self
    }
}

/// Hash a probe-tape slice (one byte per probe) in `u64` chunks.
#[inline]
pub fn fold_levels(levels: &[u8]) -> Fold128 {
    let mut f = Fold128::new(levels.len() as u64);
    let mut chunks = levels.chunks_exact(8);
    for c in &mut chunks {
        f.push(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
    }
    let mut tail = 0u64;
    for (i, &v) in chunks.remainder().iter().enumerate() {
        tail |= (v as u64) << (8 * i);
    }
    f.push(tail);
    f.finish()
}

/// The geometry facts a [`RefitPlan`] depends on: what the tape's memory
/// system looked like, as far as per-op probe counts and the recent-miss
/// ring are concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefitGeometry {
    /// Cache line size in bytes (power of two).
    pub line_bytes: u64,
    /// Whether a hardware prefetcher is configured — if so, miss-adjacency
    /// tracking reads absolute line numbers, which must then stay in the
    /// reduced signatures (and the ring in the entry key).
    pub hw_prefetch: bool,
}

/// One `LayerBegin..LayerEnd` region of a trace, precomputed for a fixed
/// geometry: op index range, probe count, and reduced signature.
#[derive(Debug, Clone, Copy)]
pub struct LayerRegion {
    /// Op index of the `LayerBegin`.
    pub begin_op: usize,
    /// Op index of the matching `LayerEnd`.
    pub end_op: usize,
    /// Demand probes consumed by the ops strictly between the two.
    pub probes: u64,
    /// Reduced signature of those ops (see module docs).
    pub sig: Fold128,
    /// Whether `PhaseBegin`/`PhaseEnd` nest fully inside the region. A
    /// phase spanning a layer boundary would leave the replay executor's
    /// phase stack inconsistent if the region were skipped, so unbalanced
    /// regions are never memoized (they don't occur in practice — layers
    /// wrap whole kernel invocations).
    pub balanced: bool,
}

/// Per-(trace, geometry) precomputation for memoized refits: one
/// [`LayerRegion`] per recorded layer, in traversal order. Building it costs
/// one linear scan of the trace; it is reused by every refit of that trace
/// at that geometry.
#[derive(Debug, Clone)]
pub struct RefitPlan {
    pub geometry: RefitGeometry,
    pub regions: Vec<LayerRegion>,
}

/// Probe count of one op at the given geometry — must match exactly what the
/// machine's timing functions consume during a (non-reference-model) replay.
fn op_probes(op: &ReplayOp, pool: &[u32], lb: u64) -> u64 {
    match *op {
        ReplayOp::VLoad { vl, addr, .. } | ReplayOp::VStore { vl, addr, .. } => {
            let (addr, vl) = (addr as u64, vl as u64);
            (addr + 4 * vl - 1) / lb - addr / lb + 1
        }
        ReplayOp::VLoadStrided { vl, addr, stride, .. }
        | ReplayOp::VStoreStrided { vl, addr, stride, .. } => {
            let (addr, vl, stride) = (addr as u64, vl as u64, stride as u64);
            if stride == 0 {
                1
            } else if stride < lb {
                // Sub-line stride touches every line between first and last.
                let last = addr + (vl - 1) * stride;
                last / lb - addr / lb + 1
            } else {
                vl
            }
        }
        ReplayOp::VIndexed { base, idx, .. } => {
            // Consecutive-duplicate line dedup over active lanes (identical
            // for the element-wise and grouped cost paths).
            let lanes = &pool[idx.off as usize..(idx.off + idx.len) as usize];
            let mut last_line = u64::MAX;
            let mut probes = 0;
            for &ix in lanes {
                if ix == u32::MAX {
                    continue;
                }
                let line = (base as u64 + 4 * ix as u64) / lb;
                if line != last_line {
                    probes += 1;
                    last_line = line;
                }
            }
            probes
        }
        ReplayOp::ScalarRead { .. } | ReplayOp::ScalarWrite { .. } => 1,
        ReplayOp::ScalarStream { addr, words, .. } => {
            let (addr, words) = (addr as u64, words as u64);
            (addr + 4 * words - 1) / lb - addr / lb + 1
        }
        // Under tape playback `tl_prefetch` skips the prefetch request, so
        // it consumes no probe.
        _ => 0,
    }
}

/// Fold one op's *timing-relevant* fields (for tape refits at the given
/// geometry) into `f`. Fields the refit provably never reads are dropped —
/// most importantly scalar access addresses (the tape supplies the level)
/// and vector access addresses on non-prefetching geometries (only the line
/// count matters). That address-blindness is what lets structurally
/// identical layers working on different buffers share one memo entry.
fn fold_op(f: &mut Fold128, op: &ReplayOp, pool: &[u32], g: RefitGeometry) {
    let lb = g.line_bytes;
    match *op {
        // Timing charge is one scalar-op unit; arguments only affect the
        // functional grant / predicate.
        ReplayOp::Setvl { .. } => f.push(1),
        ReplayOp::Whilelt { .. } => f.push(2),
        ReplayOp::VLoad { vd, vl, addr } => {
            f.push(3 | (vd as u64) << 8 | (vl as u64) << 16);
            f.push(op_probes(op, pool, lb));
            if g.hw_prefetch {
                // Miss adjacency reads absolute line numbers.
                f.push(addr as u64 / lb);
            }
        }
        ReplayOp::VStore { vs, vl, addr } => {
            f.push(4 | (vs as u64) << 8 | (vl as u64) << 16);
            f.push(op_probes(op, pool, lb));
            if g.hw_prefetch {
                f.push(addr as u64 / lb);
            }
        }
        // Strided and element-indexed costs never touch the miss ring; the
        // probe count and occupancy inputs are all that matters.
        ReplayOp::VLoadStrided { vd, vl, .. } => {
            f.push(5 | (vd as u64) << 8 | (vl as u64) << 16);
            f.push(op_probes(op, pool, lb));
        }
        ReplayOp::VStoreStrided { vs, vl, .. } => {
            f.push(6 | (vs as u64) << 8 | (vl as u64) << 16);
            f.push(op_probes(op, pool, lb));
        }
        ReplayOp::VIndexed { op: iop, reg, base, idx } => {
            let grouped = matches!(iop, IndexedOp::Gather4 | IndexedOp::Scatter4);
            f.push(7 | (iop as u64) << 4 | (reg as u64) << 8 | (idx.len as u64) << 16);
            let lanes = &pool[idx.off as usize..(idx.off + idx.len) as usize];
            let mut active = 0u64;
            for &ix in lanes {
                if ix != u32::MAX {
                    active += 1;
                    if grouped && g.hw_prefetch {
                        // Grouped accesses feed the miss ring per line.
                        f.push((base as u64 + 4 * ix as u64) / lb);
                    }
                }
            }
            f.push(active);
            f.push(op_probes(op, pool, lb));
        }
        ReplayOp::VArith { op, vd, a, b, vl } => {
            f.push(
                8 | (op as u64) << 8
                    | (vd as u64) << 16
                    | (a as u64) << 24
                    | (b as u64) << 32
                    | (vl as u64) << 40,
            );
        }
        ReplayOp::Reduce { op, vs, vl } => {
            f.push(9 | (op as u64) << 8 | (vs as u64) << 16 | (vl as u64) << 24);
        }
        // Tape playback skips the prefetch request; the cost is a fixed
        // scalar charge decided by the config alone.
        ReplayOp::Prefetch { .. } => f.push(10),
        ReplayOp::ScalarOps { n } => f.push(11 | (n as u64) << 8),
        ReplayOp::ScalarFlops { n } => f.push(12 | (n as u64) << 8),
        // The tape supplies the serving level; the address is never read.
        ReplayOp::ScalarRead { .. } => f.push(13),
        ReplayOp::ScalarWrite { .. } => f.push(14),
        ReplayOp::ScalarStream { write, .. } => {
            f.push(15 | (write as u64) << 8);
            f.push(op_probes(op, pool, lb));
        }
        ReplayOp::PhaseBegin { phase } => f.push(16 | (phase as u64) << 8),
        ReplayOp::PhaseEnd { phase } => f.push(17 | (phase as u64) << 8),
        ReplayOp::Spill => f.push(18),
        // Layer and segment boundaries never appear inside a region.
        ReplayOp::LayerBegin { .. } | ReplayOp::LayerEnd | ReplayOp::ResetTiming => {
            unreachable!("boundary op inside a layer region")
        }
    }
}

impl RefitPlan {
    /// Scan `trace` once, computing every layer region's probe count and
    /// reduced signature for `geometry`.
    pub fn build(trace: &ReplayTrace, geometry: RefitGeometry) -> Self {
        struct Open {
            begin_op: usize,
            probes: u64,
            f: Fold128,
            phase_depth: i64,
            phase_dipped: bool,
        }
        let mut regions = Vec::new();
        let mut open: Option<Open> = None;
        for (i, op) in trace.ops.iter().enumerate() {
            match *op {
                ReplayOp::LayerBegin { index, desc } => {
                    assert!(open.is_none(), "nested layers in trace");
                    let mut f = Fold128::new(0x004C_4159_4552 ^ ((index as u64) << 8));
                    f.push(desc as u64);
                    open = Some(Open {
                        begin_op: i,
                        probes: 0,
                        f,
                        phase_depth: 0,
                        phase_dipped: false,
                    });
                }
                ReplayOp::LayerEnd => {
                    let o = open.take().expect("LayerEnd without LayerBegin in trace");
                    regions.push(LayerRegion {
                        begin_op: o.begin_op,
                        end_op: i,
                        probes: o.probes,
                        sig: o.f.finish(),
                        balanced: o.phase_depth == 0 && !o.phase_dipped,
                    });
                }
                ReplayOp::ResetTiming => {
                    assert!(open.is_none(), "segment boundary inside a layer");
                }
                _ => {
                    if let Some(o) = open.as_mut() {
                        match *op {
                            ReplayOp::PhaseBegin { .. } => o.phase_depth += 1,
                            ReplayOp::PhaseEnd { .. } => {
                                o.phase_depth -= 1;
                                if o.phase_depth < 0 {
                                    o.phase_dipped = true;
                                }
                            }
                            _ => {}
                        }
                        o.probes += op_probes(op, &trace.idx_pool, geometry.line_bytes);
                        fold_op(&mut o.f, op, &trace.idx_pool, geometry);
                    }
                }
            }
        }
        assert!(open.is_none(), "trace ends inside a layer");
        RefitPlan { geometry, regions }
    }
}

/// Stored timing effect of one layer region: everything interpretation
/// would have changed, as entry-relative deltas (scoreboard times) and
/// determined exit values (accumulator deltas, carry-overs). `i64` relative
/// encodings are exact: scoreboard distances are bounded by instruction
/// latencies, many orders of magnitude below the wrap point.
#[derive(Debug, Clone)]
pub struct LayerEffect {
    pub(crate) d_now: u64,
    pub(crate) uf_rel: i64,
    pub(crate) ready_rel: [i64; NUM_VREGS],
    pub(crate) frac_bits: u64,
    pub(crate) next_occ_mem: u64,
    pub(crate) next_occ_cont: u64,
    pub(crate) last_occ_mem: u64,
    pub(crate) last_occ_cont: u64,
    pub(crate) last_occ_total: u64,
    pub(crate) ring: Option<([u64; 8], usize)>,
    pub(crate) stalls_d: StallBreakdown,
    pub(crate) phases_d: PhaseTimer,
    pub(crate) stats_d: VpuStats,
}

/// Key of one memoized layer instance. The owning store is scoped to a
/// single (machine config, tape geometry), so neither appears here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Reduced op-region signature.
    pub sig: Fold128,
    /// Probe-tape slice fold.
    pub slice: Fold128,
    /// Relative entry-state fold.
    pub entry: Fold128,
}

/// The per-layer timing store: memoized [`LayerEffect`]s plus hit/miss
/// counters. One instance per (config, tape geometry) — the owner must
/// never share an instance across configs (the effects embed latency- and
/// CPI-dependent arithmetic).
#[derive(Debug, Default)]
pub struct LayerMemo {
    pub(crate) map: HashMap<MemoKey, LayerEffect>,
    /// Layers applied from the store.
    pub hits: u64,
    /// Layers interpreted (and stored).
    pub misses: u64,
}

impl LayerMemo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.map.len() * (std::mem::size_of::<MemoKey>() + std::mem::size_of::<LayerEffect>() + 16)
    }
}

/// Entry-state snapshot held while a missed layer region is being
/// interpreted; diffed into a [`LayerEffect`] at its `LayerEnd`.
#[derive(Debug)]
pub(crate) struct EntrySnapshot {
    pub(crate) key: MemoKey,
    pub(crate) now: u64,
    /// Probe-tape cursor at entry, to assert the plan's probe count against
    /// what the timing functions actually consumed.
    pub(crate) cursor: usize,
    pub(crate) probes: u64,
    pub(crate) stalls: StallBreakdown,
    pub(crate) phases: PhaseTimer,
    pub(crate) stats: VpuStats,
}

/// Diff `b - a` of two [`VpuStats`] snapshots (componentwise).
pub(crate) fn vpu_delta(a: &VpuStats, b: &VpuStats) -> VpuStats {
    VpuStats {
        vec_instrs: b.vec_instrs - a.vec_instrs,
        vec_mem_instrs: b.vec_mem_instrs - a.vec_mem_instrs,
        active_elems: b.active_elems - a.active_elems,
        vec_flops: b.vec_flops - a.vec_flops,
        scalar_flops: b.scalar_flops - a.scalar_flops,
        scalar_ops: b.scalar_ops - a.scalar_ops,
        sw_prefetches: b.sw_prefetches - a.sw_prefetches,
        spills: b.spills - a.spills,
    }
}

/// Add `d` into `s` (componentwise).
pub(crate) fn vpu_accum(s: &mut VpuStats, d: &VpuStats) {
    s.vec_instrs += d.vec_instrs;
    s.vec_mem_instrs += d.vec_mem_instrs;
    s.active_elems += d.active_elems;
    s.vec_flops += d.vec_flops;
    s.scalar_flops += d.scalar_flops;
    s.scalar_ops += d.scalar_ops;
    s.sw_prefetches += d.sw_prefetches;
    s.spills += d.spills;
}

/// Diff `b - a` of two phase timers.
pub(crate) fn phases_delta(a: &PhaseTimer, b: &PhaseTimer) -> PhaseTimer {
    let mut d = PhaseTimer::default();
    for p in KernelPhase::ALL {
        d.add(p, b.get(p) - a.get(p));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_order_sensitive_and_stable() {
        let mut a = Fold128::new(1);
        a.push(7);
        a.push(9);
        let mut b = Fold128::new(1);
        b.push(9);
        b.push(7);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fold128::new(1);
        c.push(7);
        c.push(9);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn level_fold_distinguishes_tail_bytes() {
        assert_ne!(fold_levels(&[0, 1, 2]), fold_levels(&[0, 1, 3]));
        assert_ne!(fold_levels(&[0; 8]), fold_levels(&[0; 9]));
        assert_eq!(fold_levels(&[2, 0, 1]), fold_levels(&[2, 0, 1]));
    }

    #[test]
    fn vle_probe_count_matches_line_walk() {
        // 256-byte lines: a 16-element (64-byte) load crossing a boundary.
        let op = ReplayOp::VLoad { vd: 0, vl: 16, addr: 240 };
        assert_eq!(op_probes(&op, &[], 256), 2);
        let aligned = ReplayOp::VLoad { vd: 0, vl: 16, addr: 256 };
        assert_eq!(op_probes(&aligned, &[], 256), 1);
    }

    #[test]
    fn strided_probe_count_cases() {
        // stride 0: one probe.
        assert_eq!(
            op_probes(&ReplayOp::VLoadStrided { vd: 0, vl: 8, addr: 0, stride: 0 }, &[], 64),
            1
        );
        // sub-line stride: every line between first and last.
        assert_eq!(
            op_probes(&ReplayOp::VLoadStrided { vd: 0, vl: 8, addr: 0, stride: 16 }, &[], 64),
            2
        );
        // line-or-larger stride: one probe per element.
        assert_eq!(
            op_probes(&ReplayOp::VLoadStrided { vd: 0, vl: 8, addr: 0, stride: 64 }, &[], 64),
            8
        );
    }

    #[test]
    fn scalar_addresses_are_not_in_the_signature() {
        let g = RefitGeometry { line_bytes: 256, hw_prefetch: false };
        let mut a = Fold128::new(0);
        fold_op(&mut a, &ReplayOp::ScalarRead { addr: 100 }, &[], g);
        let mut b = Fold128::new(0);
        fold_op(&mut b, &ReplayOp::ScalarRead { addr: 2000 }, &[], g);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn vector_lines_enter_signature_only_under_hw_prefetch() {
        let no_pf = RefitGeometry { line_bytes: 256, hw_prefetch: false };
        let pf = RefitGeometry { line_bytes: 256, hw_prefetch: true };
        let x = ReplayOp::VLoad { vd: 1, vl: 16, addr: 0 };
        let y = ReplayOp::VLoad { vd: 1, vl: 16, addr: 1 << 20 };
        let sig = |op: &ReplayOp, g| {
            let mut f = Fold128::new(0);
            fold_op(&mut f, op, &[], g);
            f.finish()
        };
        // Same line count, different lines: equal without a prefetcher,
        // distinct with one (the miss ring reads absolute lines).
        assert_eq!(sig(&x, no_pf), sig(&y, no_pf));
        assert_ne!(sig(&x, pf), sig(&y, pf));
    }
}
