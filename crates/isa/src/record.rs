//! Compact event IR for the kernel sanitizer (`lva-check`).
//!
//! When recording is enabled on a [`crate::Machine`], every vector
//! operation appends one [`VecEvent`] describing *what* the instruction did
//! architecturally — registers read and written, the byte range touched in
//! memory, the vector length used — without any timing information.
//! Recording is pure observation: the timing model never reads this state,
//! so cycle counts are bit-identical with the hook on or off (the same
//! discipline as `lva-trace`, asserted by tests in `lva-check`).
//!
//! The sanitizer passes in `crates/check` fold over the event stream to
//! find uninitialized-register reads, out-of-bounds accesses, stale-copy
//! (write-after-read) hazards, and vector-length discipline violations.

use crate::stats::KernelPhase;
use crate::VReg;

/// What class of architectural action an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A vector load (unit-stride, strided, or gather): defines `dst` from
    /// the byte range `[lo, hi)`.
    Load,
    /// A vector store (unit-stride, strided, or scatter): reads `srcs[0]`
    /// and writes the byte range `[lo, hi)`.
    Store,
    /// Register-to-register arithmetic (including broadcasts and moves):
    /// reads `srcs`, defines `dst`.
    Arith,
    /// A horizontal reduction: reads `srcs[0]`, result consumed by the
    /// scalar core (no vector destination).
    Reduce,
    /// A vector-length grant: `setvl` (RVV) or `whilelt` (SVE). `vl` is the
    /// granted length, `requested` the length asked for.
    Grant,
    /// Start of a [`KernelPhase`] region (the `op` field holds its name).
    PhaseBegin,
    /// End of the most recent [`KernelPhase`] region.
    PhaseEnd,
}

/// One recorded vector operation. Fields that do not apply to the event's
/// kind hold their neutral value (`None` registers, `lo == hi` for "no
/// memory touched", `requested == 0` for non-grants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecEvent {
    pub kind: EventKind,
    /// Mnemonic (`"vle"`, `"vfmacc.vf"`, `"setvl"`, …); for phase markers,
    /// the phase name.
    pub op: &'static str,
    /// Destination register, if the op defines one.
    pub dst: Option<VReg>,
    /// Source registers read by the op (a `vfmacc vd, va, vb` reads `va`,
    /// `vb` *and* the old `vd`, so `vd` appears here too).
    pub srcs: [Option<VReg>; 3],
    /// Elements processed (granted length for [`EventKind::Grant`]).
    pub vl: usize,
    /// Lanes that did architectural work. Equal to `vl` except for
    /// gathers/scatters, where sentinel-predicated (`u32::MAX`) lanes are
    /// excluded — the count the timing model's per-element slots charge.
    /// VL-chunking changes how `vl` splits across events, but the *sum* of
    /// `active` per op is an invariant the retime certifier checks.
    pub active: usize,
    /// Requested length of a grant (`setvl rvl` / `whilelt i, n` remainder).
    pub requested: usize,
    /// First byte address touched (inclusive). `lo == hi` means none.
    pub lo: u64,
    /// One past the last byte address touched (exclusive).
    pub hi: u64,
    /// The phase associated with a `PhaseBegin`/`PhaseEnd` marker.
    pub phase: Option<KernelPhase>,
}

/// Streaming observer of the machine's event flow, installed with
/// [`crate::Machine::set_event_sink`].
///
/// Where the buffering recorder captures [`VecEvent`]s for post-hoc
/// analysis, a sink consumes the same stream as it happens and additionally
/// hears about bulk scalar-op charges (address arithmetic, loop control),
/// which carry energy but no architectural vector state. Same discipline as
/// the recorder: pure observation, timing-neutral, one branch when absent.
pub trait EventSink {
    /// One vector-op event, in program order — identical to what the
    /// recorder would buffer.
    fn event(&mut self, e: &VecEvent);

    /// `n` scalar operation units were charged (ops or scalar flops).
    /// Default: ignored.
    fn scalar_ops(&mut self, n: u64) {
        let _ = n;
    }
}

impl std::fmt::Debug for dyn EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn EventSink")
    }
}

impl VecEvent {
    fn blank(kind: EventKind, op: &'static str) -> Self {
        VecEvent {
            kind,
            op,
            dst: None,
            srcs: [None, None, None],
            vl: 0,
            active: 0,
            requested: 0,
            lo: 0,
            hi: 0,
            phase: None,
        }
    }

    /// A load defining `vd` from `[lo, hi)`.
    pub fn load(op: &'static str, vd: VReg, lo: u64, hi: u64, vl: usize) -> Self {
        VecEvent { dst: Some(vd), vl, active: vl, lo, hi, ..Self::blank(EventKind::Load, op) }
    }

    /// A store reading `vs` into `[lo, hi)`.
    pub fn store(op: &'static str, vs: VReg, lo: u64, hi: u64, vl: usize) -> Self {
        VecEvent {
            srcs: [Some(vs), None, None],
            vl,
            active: vl,
            lo,
            hi,
            ..Self::blank(EventKind::Store, op)
        }
    }

    /// Arithmetic defining `vd` from up to three sources.
    pub fn arith(op: &'static str, vd: VReg, srcs: [Option<VReg>; 3], vl: usize) -> Self {
        VecEvent { dst: Some(vd), srcs, vl, active: vl, ..Self::blank(EventKind::Arith, op) }
    }

    /// A reduction reading `vs`.
    pub fn reduce(op: &'static str, vs: VReg, vl: usize) -> Self {
        VecEvent {
            srcs: [Some(vs), None, None],
            vl,
            active: vl,
            ..Self::blank(EventKind::Reduce, op)
        }
    }

    /// A VL grant of `granted` lanes for a request of `requested`.
    pub fn grant(op: &'static str, requested: usize, granted: usize) -> Self {
        VecEvent { vl: granted, active: granted, requested, ..Self::blank(EventKind::Grant, op) }
    }

    /// Override the active-lane count (gathers/scatters with sentinel lanes).
    pub fn with_active(mut self, active: usize) -> Self {
        self.active = active;
        self
    }

    /// A phase begin/end marker.
    pub fn phase_marker(begin: bool, p: KernelPhase) -> Self {
        let kind = if begin { EventKind::PhaseBegin } else { EventKind::PhaseEnd };
        VecEvent { phase: Some(p), ..Self::blank(kind, p.name()) }
    }

    /// Whether this event touches memory.
    #[inline]
    pub fn touches_memory(&self) -> bool {
        self.hi > self.lo
    }

    /// Whether this event writes memory.
    #[inline]
    pub fn writes_memory(&self) -> bool {
        self.kind == EventKind::Store && self.touches_memory()
    }

    /// Feed this event's canonical encoding into a [`StreamHasher`]. Every
    /// architectural field participates (op, registers, lengths, byte
    /// range), no timing state does — two streams hash equal iff they are
    /// field-for-field identical.
    pub fn hash_into(&self, h: &mut StreamHasher) {
        h.write_u64(match self.kind {
            EventKind::Load => 1,
            EventKind::Store => 2,
            EventKind::Arith => 3,
            EventKind::Reduce => 4,
            EventKind::Grant => 5,
            EventKind::PhaseBegin => 6,
            EventKind::PhaseEnd => 7,
        });
        h.write_bytes(self.op.as_bytes());
        h.write_u64(self.dst.map_or(0, |r| r as u64 + 1));
        for s in self.srcs {
            h.write_u64(s.map_or(0, |r| r as u64 + 1));
        }
        h.write_u64(self.vl as u64);
        h.write_u64(self.active as u64);
        h.write_u64(self.requested as u64);
        h.write_u64(self.lo);
        h.write_u64(self.hi);
    }
}

/// FNV-1a accumulator for event-stream fingerprints. Deterministic across
/// hosts and runs (no randomized state), cheap enough to hash full-network
/// streams, and sensitive to every canonical field of every event.
#[derive(Debug, Clone)]
pub struct StreamHasher(u64);

impl Default for StreamHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        StreamHasher(Self::OFFSET)
    }

    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        // Length prefix keeps concatenated fields unambiguous.
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a recorded stream: the fold of [`VecEvent::hash_into`]
/// over every event in order. This is the hash a `RetimeCertificate`
/// (crates/depgraph) pins per design point — equal hashes over the tiny
/// field domain here mean equal streams for all practical purposes, and the
/// certifier additionally compares the streams field-by-field before
/// trusting a hash.
pub fn stream_hash(events: &[VecEvent]) -> u64 {
    let mut h = StreamHasher::new();
    h.write_u64(events.len() as u64);
    for e in events {
        e.hash_into(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_the_right_fields() {
        let l = VecEvent::load("vle", 3, 0x100, 0x140, 16);
        assert_eq!(l.kind, EventKind::Load);
        assert_eq!(l.dst, Some(3));
        assert!(l.touches_memory() && !l.writes_memory());

        let s = VecEvent::store("vse", 4, 0x100, 0x140, 16);
        assert_eq!(s.srcs, [Some(4), None, None]);
        assert!(s.writes_memory());

        let g = VecEvent::grant("setvl", 100, 16);
        assert_eq!((g.requested, g.vl), (100, 16));
        assert!(!g.touches_memory());

        let p = VecEvent::phase_marker(true, KernelPhase::Gemm);
        assert_eq!(p.kind, EventKind::PhaseBegin);
        assert_eq!(p.op, "gemm");
    }

    #[test]
    fn active_defaults_to_vl_and_with_active_overrides() {
        let g = VecEvent::load("vgather", 2, 0x100, 0x180, 16);
        assert_eq!(g.active, 16);
        assert_eq!(g.with_active(11).active, 11);
        assert_eq!(VecEvent::grant("setvl", 100, 16).active, 16);
    }

    #[test]
    fn stream_hash_is_deterministic_and_field_sensitive() {
        let a = vec![
            VecEvent::load("vle", 1, 0x100, 0x140, 16),
            VecEvent::arith("vfadd.vv", 2, [Some(1), Some(1), None], 16),
            VecEvent::store("vse", 2, 0x200, 0x240, 16),
        ];
        assert_eq!(stream_hash(&a), stream_hash(&a.clone()));
        // Any single-field change moves the hash.
        let mut b = a.clone();
        b[1].vl = 8;
        assert_ne!(stream_hash(&a), stream_hash(&b));
        let mut c = a.clone();
        c[0].lo = 0x104;
        assert_ne!(stream_hash(&a), stream_hash(&c));
        let mut d = a.clone();
        d[2] = d[2].clone().with_active(8);
        assert_ne!(stream_hash(&a), stream_hash(&d));
        // Order matters.
        let mut e = a.clone();
        e.swap(0, 1);
        assert_ne!(stream_hash(&a), stream_hash(&e));
        // And the empty stream is distinct from a one-event stream.
        assert_ne!(stream_hash(&[]), stream_hash(&a[..1]));
    }
}
