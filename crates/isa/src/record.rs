//! Compact event IR for the kernel sanitizer (`lva-check`).
//!
//! When recording is enabled on a [`crate::Machine`], every vector
//! operation appends one [`VecEvent`] describing *what* the instruction did
//! architecturally — registers read and written, the byte range touched in
//! memory, the vector length used — without any timing information.
//! Recording is pure observation: the timing model never reads this state,
//! so cycle counts are bit-identical with the hook on or off (the same
//! discipline as `lva-trace`, asserted by tests in `lva-check`).
//!
//! The sanitizer passes in `crates/check` fold over the event stream to
//! find uninitialized-register reads, out-of-bounds accesses, stale-copy
//! (write-after-read) hazards, and vector-length discipline violations.

use crate::stats::KernelPhase;
use crate::VReg;

/// What class of architectural action an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A vector load (unit-stride, strided, or gather): defines `dst` from
    /// the byte range `[lo, hi)`.
    Load,
    /// A vector store (unit-stride, strided, or scatter): reads `srcs[0]`
    /// and writes the byte range `[lo, hi)`.
    Store,
    /// Register-to-register arithmetic (including broadcasts and moves):
    /// reads `srcs`, defines `dst`.
    Arith,
    /// A horizontal reduction: reads `srcs[0]`, result consumed by the
    /// scalar core (no vector destination).
    Reduce,
    /// A vector-length grant: `setvl` (RVV) or `whilelt` (SVE). `vl` is the
    /// granted length, `requested` the length asked for.
    Grant,
    /// Start of a [`KernelPhase`] region (the `op` field holds its name).
    PhaseBegin,
    /// End of the most recent [`KernelPhase`] region.
    PhaseEnd,
}

/// One recorded vector operation. Fields that do not apply to the event's
/// kind hold their neutral value (`None` registers, `lo == hi` for "no
/// memory touched", `requested == 0` for non-grants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecEvent {
    pub kind: EventKind,
    /// Mnemonic (`"vle"`, `"vfmacc.vf"`, `"setvl"`, …); for phase markers,
    /// the phase name.
    pub op: &'static str,
    /// Destination register, if the op defines one.
    pub dst: Option<VReg>,
    /// Source registers read by the op (a `vfmacc vd, va, vb` reads `va`,
    /// `vb` *and* the old `vd`, so `vd` appears here too).
    pub srcs: [Option<VReg>; 3],
    /// Elements processed (granted length for [`EventKind::Grant`]).
    pub vl: usize,
    /// Requested length of a grant (`setvl rvl` / `whilelt i, n` remainder).
    pub requested: usize,
    /// First byte address touched (inclusive). `lo == hi` means none.
    pub lo: u64,
    /// One past the last byte address touched (exclusive).
    pub hi: u64,
    /// The phase associated with a `PhaseBegin`/`PhaseEnd` marker.
    pub phase: Option<KernelPhase>,
}

/// Streaming observer of the machine's event flow, installed with
/// [`crate::Machine::set_event_sink`].
///
/// Where the buffering recorder captures [`VecEvent`]s for post-hoc
/// analysis, a sink consumes the same stream as it happens and additionally
/// hears about bulk scalar-op charges (address arithmetic, loop control),
/// which carry energy but no architectural vector state. Same discipline as
/// the recorder: pure observation, timing-neutral, one branch when absent.
pub trait EventSink {
    /// One vector-op event, in program order — identical to what the
    /// recorder would buffer.
    fn event(&mut self, e: &VecEvent);

    /// `n` scalar operation units were charged (ops or scalar flops).
    /// Default: ignored.
    fn scalar_ops(&mut self, n: u64) {
        let _ = n;
    }
}

impl std::fmt::Debug for dyn EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn EventSink")
    }
}

impl VecEvent {
    fn blank(kind: EventKind, op: &'static str) -> Self {
        VecEvent {
            kind,
            op,
            dst: None,
            srcs: [None, None, None],
            vl: 0,
            requested: 0,
            lo: 0,
            hi: 0,
            phase: None,
        }
    }

    /// A load defining `vd` from `[lo, hi)`.
    pub fn load(op: &'static str, vd: VReg, lo: u64, hi: u64, vl: usize) -> Self {
        VecEvent { dst: Some(vd), vl, lo, hi, ..Self::blank(EventKind::Load, op) }
    }

    /// A store reading `vs` into `[lo, hi)`.
    pub fn store(op: &'static str, vs: VReg, lo: u64, hi: u64, vl: usize) -> Self {
        VecEvent { srcs: [Some(vs), None, None], vl, lo, hi, ..Self::blank(EventKind::Store, op) }
    }

    /// Arithmetic defining `vd` from up to three sources.
    pub fn arith(op: &'static str, vd: VReg, srcs: [Option<VReg>; 3], vl: usize) -> Self {
        VecEvent { dst: Some(vd), srcs, vl, ..Self::blank(EventKind::Arith, op) }
    }

    /// A reduction reading `vs`.
    pub fn reduce(op: &'static str, vs: VReg, vl: usize) -> Self {
        VecEvent { srcs: [Some(vs), None, None], vl, ..Self::blank(EventKind::Reduce, op) }
    }

    /// A VL grant of `granted` lanes for a request of `requested`.
    pub fn grant(op: &'static str, requested: usize, granted: usize) -> Self {
        VecEvent { vl: granted, requested, ..Self::blank(EventKind::Grant, op) }
    }

    /// A phase begin/end marker.
    pub fn phase_marker(begin: bool, p: KernelPhase) -> Self {
        let kind = if begin { EventKind::PhaseBegin } else { EventKind::PhaseEnd };
        VecEvent { phase: Some(p), ..Self::blank(kind, p.name()) }
    }

    /// Whether this event touches memory.
    #[inline]
    pub fn touches_memory(&self) -> bool {
        self.hi > self.lo
    }

    /// Whether this event writes memory.
    #[inline]
    pub fn writes_memory(&self) -> bool {
        self.kind == EventKind::Store && self.touches_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_the_right_fields() {
        let l = VecEvent::load("vle", 3, 0x100, 0x140, 16);
        assert_eq!(l.kind, EventKind::Load);
        assert_eq!(l.dst, Some(3));
        assert!(l.touches_memory() && !l.writes_memory());

        let s = VecEvent::store("vse", 4, 0x100, 0x140, 16);
        assert_eq!(s.srcs, [Some(4), None, None]);
        assert!(s.writes_memory());

        let g = VecEvent::grant("setvl", 100, 16);
        assert_eq!((g.requested, g.vl), (100, 16));
        assert!(!g.touches_memory());

        let p = VecEvent::phase_marker(true, KernelPhase::Gemm);
        assert_eq!(p.kind, EventKind::PhaseBegin);
        assert_eq!(p.op, "gemm");
    }
}
