//! Execution statistics: instruction counts, consumed vector length,
//! floating-point work, and per-kernel-phase cycle attribution.

/// Counters maintained by the [`crate::Machine`] timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VpuStats {
    /// Vector instructions issued (arithmetic + memory + moves).
    pub vec_instrs: u64,
    /// Vector memory instructions (subset of `vec_instrs`).
    pub vec_mem_instrs: u64,
    /// Sum of active element counts over all vector instructions; the
    /// average consumed vector length of Table III is
    /// `32 * active_elems / vec_instrs` bits.
    pub active_elems: u64,
    /// Floating-point operations performed by vector instructions
    /// (FMA counts two per element).
    pub vec_flops: u64,
    /// Floating-point operations charged by scalar code.
    pub scalar_flops: u64,
    /// Scalar instructions / operation units charged in bulk.
    pub scalar_ops: u64,
    /// Software prefetch instructions issued (even if dropped).
    pub sw_prefetches: u64,
    /// Vector register spill fills/stores inserted by kernels.
    pub spills: u64,
}

impl VpuStats {
    /// Average consumed vector length in **bits** (Table III).
    pub fn avg_vlen_bits(&self) -> f64 {
        if self.vec_instrs == 0 {
            0.0
        } else {
            32.0 * self.active_elems as f64 / self.vec_instrs as f64
        }
    }

    /// Total floating-point operations (vector + scalar).
    pub fn total_flops(&self) -> u64 {
        self.vec_flops + self.scalar_flops
    }

    /// Merge counters from another stats block.
    pub fn merge(&mut self, o: &VpuStats) {
        self.vec_instrs += o.vec_instrs;
        self.vec_mem_instrs += o.vec_mem_instrs;
        self.active_elems += o.active_elems;
        self.vec_flops += o.vec_flops;
        self.scalar_flops += o.scalar_flops;
        self.scalar_ops += o.scalar_ops;
        self.sw_prefetches += o.sw_prefetches;
        self.spills += o.spills;
    }
}

/// Why the scalar front-end could not issue the next vector instruction
/// immediately. Every stalled cycle the timing model inserts is attributed
/// to exactly one cause, so the per-cause counters of a [`StallBreakdown`]
/// always sum to its total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Read-after-write dependency on a vector register still in flight
    /// (beyond what the out-of-order window hides).
    RawHazard,
    /// The fixed startup ramp of the vector pipeline (depth + lane fill)
    /// exposed on a dependent instruction.
    VectorStartup,
    /// Cache-miss latency the memory unit could not overlap (the exposed
    /// portion of vector loads/stores occupying the unit).
    MemLatency,
    /// The vector unit was busy executing element groups: occupancy from
    /// chimes, i.e. work serialised by the lane count.
    LaneOccupancy,
    /// Dead cycles between back-to-back vector instructions
    /// (`inter_instr_gap`: decode/dispatch bandwidth of the front-end).
    IssueWidth,
    /// Cycles spent waiting for the shared L2/DRAM port behind another
    /// core's in-flight transfer (`lva-scale` multi-core SoC runs). Always
    /// zero on a single-core machine: the port model only charges
    /// *cross-core* interference, never a core's own serialization.
    Contention,
}

impl StallCause {
    pub const ALL: [StallCause; 6] = [
        StallCause::RawHazard,
        StallCause::VectorStartup,
        StallCause::MemLatency,
        StallCause::LaneOccupancy,
        StallCause::IssueWidth,
        StallCause::Contention,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StallCause::RawHazard => "raw_hazard",
            StallCause::VectorStartup => "vector_startup",
            StallCause::MemLatency => "mem_latency",
            StallCause::LaneOccupancy => "lane_occupancy",
            StallCause::IssueWidth => "issue_width",
            StallCause::Contention => "contention",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

const _: () = {
    let mut i = 0;
    while i < StallCause::ALL.len() {
        assert!(StallCause::ALL[i] as usize == i, "StallCause::ALL out of declaration order");
        i += 1;
    }
};

/// Per-cause attribution of every cycle the scalar clock waited on the
/// vector/memory subsystem. Carried alongside [`VpuStats`] by the machine.
///
/// The `total` is accumulated *independently* of the per-cause counters
/// (via [`StallBreakdown::note_total`]) so that the invariant "causes sum
/// to total" is a real cross-check of the attribution logic, not an
/// identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    by_cause: [u64; 6],
    total: u64,
}

impl StallBreakdown {
    /// Attribute `cycles` to `cause`.
    #[inline]
    pub fn add(&mut self, cause: StallCause, cycles: u64) {
        self.by_cause[cause.index()] += cycles;
    }

    /// Record `cycles` of total stall time (independent of attribution).
    #[inline]
    pub fn note_total(&mut self, cycles: u64) {
        self.total += cycles;
    }

    pub fn get(&self, cause: StallCause) -> u64 {
        self.by_cause[cause.index()]
    }

    /// Total stalled cycles as accumulated by [`Self::note_total`].
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of the per-cause counters; equals [`Self::total`] when the
    /// attribution logic is consistent.
    pub fn attributed(&self) -> u64 {
        self.by_cause.iter().sum()
    }

    pub fn merge(&mut self, o: &StallBreakdown) {
        for (a, b) in self.by_cause.iter_mut().zip(o.by_cause.iter()) {
            *a += b;
        }
        self.total += o.total;
    }

    /// Difference of two snapshots (`self` later, `earlier` first): the
    /// stalls incurred in between. Used for per-layer deltas.
    pub fn since(&self, earlier: &StallBreakdown) -> StallBreakdown {
        let mut d = StallBreakdown::default();
        for (i, slot) in d.by_cause.iter_mut().enumerate() {
            *slot = self.by_cause[i] - earlier.by_cause[i];
        }
        d.total = self.total - earlier.total;
        d
    }

    /// Causes with non-zero cycles, largest first.
    pub fn breakdown(&self) -> Vec<(StallCause, u64)> {
        let mut v: Vec<(StallCause, u64)> = StallCause::ALL
            .iter()
            .copied()
            .map(|c| (c, self.get(c)))
            .filter(|&(_, n)| n > 0)
            .collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }
}

/// Kernel phases used for the §II-B execution-time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPhase {
    Gemm,
    Im2col,
    WinogradInputTransform,
    WinogradWeightTransform,
    WinogradTupleMul,
    WinogradOutputTransform,
    Pack,
    Bias,
    Normalize,
    Activate,
    Pool,
    Upsample,
    Softmax,
    FillCopy,
    Other,
}

impl KernelPhase {
    pub const ALL: [KernelPhase; 15] = [
        KernelPhase::Gemm,
        KernelPhase::Im2col,
        KernelPhase::WinogradInputTransform,
        KernelPhase::WinogradWeightTransform,
        KernelPhase::WinogradTupleMul,
        KernelPhase::WinogradOutputTransform,
        KernelPhase::Pack,
        KernelPhase::Bias,
        KernelPhase::Normalize,
        KernelPhase::Activate,
        KernelPhase::Pool,
        KernelPhase::Upsample,
        KernelPhase::Softmax,
        KernelPhase::FillCopy,
        KernelPhase::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            KernelPhase::Gemm => "gemm",
            KernelPhase::Im2col => "im2col",
            KernelPhase::WinogradInputTransform => "wino_input_t",
            KernelPhase::WinogradWeightTransform => "wino_weight_t",
            KernelPhase::WinogradTupleMul => "wino_tuple_mul",
            KernelPhase::WinogradOutputTransform => "wino_output_t",
            KernelPhase::Pack => "pack",
            KernelPhase::Bias => "add_bias",
            KernelPhase::Normalize => "normalize",
            KernelPhase::Activate => "activate",
            KernelPhase::Pool => "maxpool",
            KernelPhase::Upsample => "upsample",
            KernelPhase::Softmax => "softmax",
            KernelPhase::FillCopy => "fill/copy",
            KernelPhase::Other => "other",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

// `index()` relies on `ALL` listing the variants in declaration order so the
// discriminant doubles as the array index; verify at compile time.
const _: () = {
    let mut i = 0;
    while i < KernelPhase::ALL.len() {
        assert!(KernelPhase::ALL[i] as usize == i, "KernelPhase::ALL out of declaration order");
        i += 1;
    }
};

/// Accumulates cycles per [`KernelPhase`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimer {
    cycles: [u64; 15],
}

impl PhaseTimer {
    pub fn add(&mut self, phase: KernelPhase, cycles: u64) {
        self.cycles[phase.index()] += cycles;
    }

    pub fn get(&self, phase: KernelPhase) -> u64 {
        self.cycles[phase.index()]
    }

    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    pub fn merge(&mut self, o: &PhaseTimer) {
        for (a, b) in self.cycles.iter_mut().zip(o.cycles.iter()) {
            *a += b;
        }
    }

    /// Phases with non-zero time, largest first.
    pub fn breakdown(&self) -> Vec<(KernelPhase, u64)> {
        let mut v: Vec<(KernelPhase, u64)> = KernelPhase::ALL
            .iter()
            .copied()
            .map(|p| (p, self.get(p)))
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_vlen_bits() {
        let s = VpuStats { vec_instrs: 4, active_elems: 4 * 16, ..Default::default() };
        assert_eq!(s.avg_vlen_bits(), 512.0);
        assert_eq!(VpuStats::default().avg_vlen_bits(), 0.0);
    }

    #[test]
    fn phase_timer_accumulates_and_sorts() {
        let mut t = PhaseTimer::default();
        t.add(KernelPhase::Gemm, 100);
        t.add(KernelPhase::Im2col, 7);
        t.add(KernelPhase::Gemm, 20);
        assert_eq!(t.get(KernelPhase::Gemm), 120);
        assert_eq!(t.total(), 127);
        let bd = t.breakdown();
        assert_eq!(bd[0], (KernelPhase::Gemm, 120));
        assert_eq!(bd.len(), 2);
    }

    #[test]
    fn stall_breakdown_accumulates_and_diffs() {
        let mut s = StallBreakdown::default();
        s.add(StallCause::RawHazard, 10);
        s.add(StallCause::MemLatency, 30);
        s.note_total(40);
        assert_eq!(s.get(StallCause::RawHazard), 10);
        assert_eq!(s.attributed(), 40);
        assert_eq!(s.total(), 40);
        assert_eq!(s.breakdown()[0], (StallCause::MemLatency, 30));

        let snapshot = s;
        s.add(StallCause::IssueWidth, 5);
        s.note_total(5);
        let d = s.since(&snapshot);
        assert_eq!(d.get(StallCause::IssueWidth), 5);
        assert_eq!(d.get(StallCause::MemLatency), 0);
        assert_eq!(d.total(), 5);

        let mut m = StallBreakdown::default();
        m.merge(&s);
        m.merge(&snapshot);
        assert_eq!(m.total(), s.total() + snapshot.total());
        assert_eq!(m.attributed(), s.attributed() + snapshot.attributed());
    }

    #[test]
    fn stall_cause_names_are_distinct() {
        for (i, a) in StallCause::ALL.iter().enumerate() {
            for b in &StallCause::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn stats_merge() {
        let mut a = VpuStats { vec_instrs: 1, vec_flops: 10, ..Default::default() };
        let b = VpuStats { vec_instrs: 2, scalar_flops: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.vec_instrs, 3);
        assert_eq!(a.total_flops(), 15);
    }
}
