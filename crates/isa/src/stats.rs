//! Execution statistics: instruction counts, consumed vector length,
//! floating-point work, and per-kernel-phase cycle attribution.

/// Counters maintained by the [`crate::Machine`] timing model.
#[derive(Debug, Clone, Copy, Default)]
pub struct VpuStats {
    /// Vector instructions issued (arithmetic + memory + moves).
    pub vec_instrs: u64,
    /// Vector memory instructions (subset of `vec_instrs`).
    pub vec_mem_instrs: u64,
    /// Sum of active element counts over all vector instructions; the
    /// average consumed vector length of Table III is
    /// `32 * active_elems / vec_instrs` bits.
    pub active_elems: u64,
    /// Floating-point operations performed by vector instructions
    /// (FMA counts two per element).
    pub vec_flops: u64,
    /// Floating-point operations charged by scalar code.
    pub scalar_flops: u64,
    /// Scalar instructions / operation units charged in bulk.
    pub scalar_ops: u64,
    /// Software prefetch instructions issued (even if dropped).
    pub sw_prefetches: u64,
    /// Vector register spill fills/stores inserted by kernels.
    pub spills: u64,
}

impl VpuStats {
    /// Average consumed vector length in **bits** (Table III).
    pub fn avg_vlen_bits(&self) -> f64 {
        if self.vec_instrs == 0 {
            0.0
        } else {
            32.0 * self.active_elems as f64 / self.vec_instrs as f64
        }
    }

    /// Total floating-point operations (vector + scalar).
    pub fn total_flops(&self) -> u64 {
        self.vec_flops + self.scalar_flops
    }

    /// Merge counters from another stats block.
    pub fn merge(&mut self, o: &VpuStats) {
        self.vec_instrs += o.vec_instrs;
        self.vec_mem_instrs += o.vec_mem_instrs;
        self.active_elems += o.active_elems;
        self.vec_flops += o.vec_flops;
        self.scalar_flops += o.scalar_flops;
        self.scalar_ops += o.scalar_ops;
        self.sw_prefetches += o.sw_prefetches;
        self.spills += o.spills;
    }
}

/// Kernel phases used for the §II-B execution-time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPhase {
    Gemm,
    Im2col,
    WinogradInputTransform,
    WinogradWeightTransform,
    WinogradTupleMul,
    WinogradOutputTransform,
    Pack,
    Bias,
    Normalize,
    Activate,
    Pool,
    Upsample,
    Softmax,
    FillCopy,
    Other,
}

impl KernelPhase {
    pub const ALL: [KernelPhase; 15] = [
        KernelPhase::Gemm,
        KernelPhase::Im2col,
        KernelPhase::WinogradInputTransform,
        KernelPhase::WinogradWeightTransform,
        KernelPhase::WinogradTupleMul,
        KernelPhase::WinogradOutputTransform,
        KernelPhase::Pack,
        KernelPhase::Bias,
        KernelPhase::Normalize,
        KernelPhase::Activate,
        KernelPhase::Pool,
        KernelPhase::Upsample,
        KernelPhase::Softmax,
        KernelPhase::FillCopy,
        KernelPhase::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            KernelPhase::Gemm => "gemm",
            KernelPhase::Im2col => "im2col",
            KernelPhase::WinogradInputTransform => "wino_input_t",
            KernelPhase::WinogradWeightTransform => "wino_weight_t",
            KernelPhase::WinogradTupleMul => "wino_tuple_mul",
            KernelPhase::WinogradOutputTransform => "wino_output_t",
            KernelPhase::Pack => "pack",
            KernelPhase::Bias => "add_bias",
            KernelPhase::Normalize => "normalize",
            KernelPhase::Activate => "activate",
            KernelPhase::Pool => "maxpool",
            KernelPhase::Upsample => "upsample",
            KernelPhase::Softmax => "softmax",
            KernelPhase::FillCopy => "fill/copy",
            KernelPhase::Other => "other",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&p| p == self).unwrap()
    }
}

/// Accumulates cycles per [`KernelPhase`].
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    cycles: [u64; 15],
}

impl PhaseTimer {
    pub fn add(&mut self, phase: KernelPhase, cycles: u64) {
        self.cycles[phase.index()] += cycles;
    }

    pub fn get(&self, phase: KernelPhase) -> u64 {
        self.cycles[phase.index()]
    }

    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    pub fn merge(&mut self, o: &PhaseTimer) {
        for (a, b) in self.cycles.iter_mut().zip(o.cycles.iter()) {
            *a += b;
        }
    }

    /// Phases with non-zero time, largest first.
    pub fn breakdown(&self) -> Vec<(KernelPhase, u64)> {
        let mut v: Vec<(KernelPhase, u64)> = KernelPhase::ALL
            .iter()
            .copied()
            .map(|p| (p, self.get(p)))
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_vlen_bits() {
        let s = VpuStats { vec_instrs: 4, active_elems: 4 * 16, ..Default::default() };
        assert_eq!(s.avg_vlen_bits(), 512.0);
        assert_eq!(VpuStats::default().avg_vlen_bits(), 0.0);
    }

    #[test]
    fn phase_timer_accumulates_and_sorts() {
        let mut t = PhaseTimer::default();
        t.add(KernelPhase::Gemm, 100);
        t.add(KernelPhase::Im2col, 7);
        t.add(KernelPhase::Gemm, 20);
        assert_eq!(t.get(KernelPhase::Gemm), 120);
        assert_eq!(t.total(), 127);
        let bd = t.breakdown();
        assert_eq!(bd[0], (KernelPhase::Gemm, 120));
        assert_eq!(bd.len(), 2);
    }

    #[test]
    fn stats_merge() {
        let mut a = VpuStats { vec_instrs: 1, vec_flops: 10, ..Default::default() };
        let b = VpuStats { vec_instrs: 2, scalar_flops: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.vec_instrs, 3);
        assert_eq!(a.total_flops(), 15);
    }
}
