//! Pinning the `IdealSpec` counterfactual knobs (`lva-whatif`).
//!
//! The knobs must be **timing-only**: under any spec, functional state
//! (registers, memory), cache state transitions and statistics, and recorded
//! event streams are bit-identical to the factual machine; only cycle counts
//! may change, and only downward (every idealization is cycle-monotone).
//! With all knobs off, cycle counts, `VpuStats`, `StallBreakdown` and cache
//! statistics are bit-identical to a machine built before the knobs existed
//! — the same contract `set_reference_model` pins for the fast paths.
//!
//! Driven by seeded SplitMix64 op streams across the four Table II design
//! points plus the A64FX profile (hardware prefetcher + miss-overlap ring).

use lva_isa::{Buf, IdealKnob, IdealSpec, Machine, MachineConfig, PrefetchTarget};
use lva_sim::Rng;

/// Table II design points (RVV decoupled / SVE through-L1 at two L2 sizes)
/// plus A64FX for the prefetcher and out-of-order paths.
fn design_points() -> Vec<(String, MachineConfig)> {
    let mut out = Vec::new();
    for l2 in [1usize << 20, 4 << 20] {
        out.push((format!("rvv/2048b/L2={}MB", l2 >> 20), MachineConfig::rvv_gem5(2048, 8, l2)));
        out.push((format!("sve/512b/L2={}MB", l2 >> 20), MachineConfig::sve_gem5(512, l2)));
    }
    out.push(("a64fx".to_string(), MachineConfig::a64fx()));
    out
}

/// Working set larger than the L1 so streams exercise misses and writebacks.
const ARENA_WORDS: usize = 1 << 15;
const USED_REGS: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    Vle { vd: usize, off: usize, vl: usize },
    Vse { vs: usize, off: usize, vl: usize },
    Vlse { vd: usize, off: usize, stride: u64, vl: usize },
    Gather { vd: usize, idx: Vec<u32> },
    Fma { vd: usize, a: f32, vs: usize, vl: usize },
    Redsum { vs: usize, vl: usize },
    Div { vd: usize, va: usize, vb: usize, vl: usize },
    ScalarRead { off: usize },
    ScalarWrite { off: usize, v: f32 },
    Prefetch { off: usize, target: PrefetchTarget },
}

fn random_indices(rng: &mut Rng, vl: usize) -> Vec<u32> {
    (0..vl)
        .map(|_| if rng.gen_bool(0.1) { u32::MAX } else { rng.gen_index(0, ARENA_WORDS) as u32 })
        .collect()
}

fn random_stream(rng: &mut Rng, max_vl: usize, ops: usize) -> Vec<Op> {
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let vl = rng.gen_index(1, max_vl + 1);
        let vd = rng.gen_index(0, USED_REGS);
        let vs = rng.gen_index(0, USED_REGS);
        out.push(match rng.gen_index(0, 10) {
            0 | 1 => Op::Vle { vd, off: rng.gen_index(0, ARENA_WORDS - vl + 1), vl },
            2 => Op::Vse { vs, off: rng.gen_index(0, ARENA_WORDS - vl + 1), vl },
            3 => {
                let stride_words = rng.gen_range(0, 9);
                let span = (vl - 1) * stride_words as usize + 1;
                Op::Vlse {
                    vd,
                    off: rng.gen_index(0, ARENA_WORDS - span + 1),
                    stride: 4 * stride_words,
                    vl,
                }
            }
            4 => Op::Gather { vd, idx: random_indices(rng, vl) },
            5 | 6 => {
                let vs = if vs == vd { (vs + 1) % USED_REGS } else { vs };
                Op::Fma { vd, a: rng.next_f32_signed(), vs, vl }
            }
            7 => {
                if rng.gen_bool(0.5) {
                    Op::Redsum { vs, vl }
                } else {
                    let va = (vd + 1) % USED_REGS;
                    let vb = (vd + 2) % USED_REGS;
                    Op::Div { vd, va, vb, vl }
                }
            }
            8 => Op::Prefetch {
                off: rng.gen_index(0, ARENA_WORDS),
                target: if rng.gen_bool(0.5) { PrefetchTarget::L1 } else { PrefetchTarget::L2 },
            },
            _ => {
                if rng.gen_bool(0.5) {
                    Op::ScalarRead { off: rng.gen_index(0, ARENA_WORDS) }
                } else {
                    Op::ScalarWrite { off: rng.gen_index(0, ARENA_WORDS), v: rng.next_f32_signed() }
                }
            }
        });
    }
    out
}

fn machine_with_arena(cfg: &MachineConfig, seed: u64) -> (Machine, Buf) {
    let mut m = Machine::new(cfg.clone());
    let buf = m.mem.alloc(ARENA_WORDS);
    let data = Rng::new(seed).f32_vec(ARENA_WORDS);
    m.mem.slice_mut(buf).copy_from_slice(&data);
    (m, buf)
}

fn apply(m: &mut Machine, buf: Buf, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Vle { vd, off, vl } => m.vle(*vd, buf.addr(*off), *vl),
            Op::Vse { vs, off, vl } => m.vse(*vs, buf.addr(*off), *vl),
            Op::Vlse { vd, off, stride, vl } => m.vlse(*vd, buf.addr(*off), *stride, *vl),
            Op::Gather { vd, idx } => m.vgather(*vd, buf.addr(0), idx, idx.len()),
            Op::Fma { vd, a, vs, vl } => m.vfmacc_vf(*vd, *a, *vs, *vl),
            Op::Redsum { vs, vl } => {
                let _ = m.vfredsum(*vs, *vl);
            }
            Op::Div { vd, va, vb, vl } => {
                // Guard against 0/0 NaN asymmetries: fill vb deterministically.
                m.vbroadcast(*vb, 1.5, *vl);
                m.vfdiv_vv(*vd, *va, *vb, *vl);
            }
            Op::ScalarRead { off } => {
                let _ = m.scalar_read(buf.addr(*off));
            }
            Op::ScalarWrite { off, v } => m.scalar_write(buf.addr(*off), *v),
            Op::Prefetch { off, target } => m.prefetch(buf.addr(*off), *target),
        }
    }
}

fn assert_functional_identical(ideal: &Machine, factual: &Machine, buf: Buf, what: &str) {
    assert_eq!(ideal.stats, factual.stats, "{what}: VpuStats diverged");
    assert_eq!(ideal.sys.stats(), factual.sys.stats(), "{what}: cache statistics diverged");
    for r in 0..USED_REGS {
        let (a, b) = (ideal.vreg(r), factual.vreg(r));
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{what}: register v{r} contents diverged"
        );
    }
    let (a, b) = (ideal.mem.slice(buf), factual.mem.slice(buf));
    assert!(
        a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: memory contents diverged"
    );
}

/// With all knobs off, a machine routed through `set_ideal` is bit-identical
/// to the plain fast-path machine on every observable, including cycles and
/// stall attribution.
#[test]
fn knobs_off_is_bit_identical_to_fast_path() {
    for (name, cfg) in design_points() {
        for seed in [1u64, 0xBEEF, 0x5EED_CAFE] {
            let max_vl = cfg.vpu.vlen_elems();
            let ops = random_stream(&mut Rng::new(seed), max_vl, 300);
            let (mut plain, buf) = machine_with_arena(&cfg, seed);
            let (mut off, _) = machine_with_arena(&cfg, seed);
            off.set_ideal(IdealSpec::NONE);
            assert!(!off.ideal().any());
            apply(&mut plain, buf, &ops);
            apply(&mut off, buf, &ops);
            let what = format!("{name} seed={seed:#x}");
            assert_eq!(off.cycles(), plain.cycles(), "{what}: cycle count diverged");
            assert_eq!(off.stalls, plain.stalls, "{what}: stall attribution diverged");
            assert_functional_identical(&off, &plain, buf, &what);
        }
    }
}

/// Under ANY knob (each single knob and all of them at once), functional
/// state, cache statistics, and the recorded event stream stay bit-identical
/// to the factual run, and cycles never increase. All-on is at least as fast
/// as every single knob (the clamps compose componentwise).
#[test]
fn every_knob_is_timing_only_and_cycle_monotone() {
    let all_on = IdealSpec {
        perfect_l1: true,
        perfect_l2: true,
        zero_vector_startup: true,
        infinite_lanes: true,
        infinite_issue: true,
    };
    for (name, cfg) in design_points() {
        for seed in [7u64, 0xF00D] {
            let max_vl = cfg.vpu.vlen_elems();
            let ops = random_stream(&mut Rng::new(seed), max_vl, 300);
            let run = |spec: IdealSpec| {
                let (mut m, buf) = machine_with_arena(&cfg, seed);
                m.set_ideal(spec);
                m.record_events();
                apply(&mut m, buf, &ops);
                (m, buf)
            };
            let (mut factual, buf) = run(IdealSpec::NONE);
            let factual_events = factual.take_events();
            let mut single_cycles = Vec::new();
            for knob in IdealKnob::ALL {
                let (mut m, _) = run(knob.spec());
                let what = format!("{name} seed={seed:#x} +{}", knob.name());
                assert_eq!(m.take_events(), factual_events, "{what}: event stream diverged");
                assert_functional_identical(&m, &factual, buf, &what);
                assert!(
                    m.cycles() <= factual.cycles(),
                    "{what}: idealization increased cycles ({} > {})",
                    m.cycles(),
                    factual.cycles()
                );
                assert_eq!(
                    m.stalls.attributed(),
                    m.stalls.total(),
                    "{what}: stall attribution no longer sums to total"
                );
                single_cycles.push(m.cycles());
            }
            let (all, _) = run(all_on);
            let what = format!("{name} seed={seed:#x} all-on");
            assert_functional_identical(&all, &factual, buf, &what);
            for (knob, &c) in IdealKnob::ALL.iter().zip(&single_cycles) {
                assert!(
                    all.cycles() <= c,
                    "{what}: slower than single knob +{} ({} > {c})",
                    knob.name(),
                    all.cycles()
                );
            }
        }
    }
}

/// The reference (per-element) model honours the knobs exactly like the fast
/// path: equivalence holds under idealization too.
#[test]
fn reference_model_agrees_under_knobs() {
    for (name, cfg) in design_points() {
        let seed = 0x1DEA;
        let max_vl = cfg.vpu.vlen_elems();
        let ops = random_stream(&mut Rng::new(seed), max_vl, 200);
        for knob in IdealKnob::ALL {
            let run = |reference: bool| {
                let (mut m, buf) = machine_with_arena(&cfg, seed);
                m.set_reference_model(reference);
                m.set_ideal(knob.spec());
                apply(&mut m, buf, &ops);
                (m, buf)
            };
            let (fast, buf) = run(false);
            let (reference, _) = run(true);
            let what = format!("{name} +{}", knob.name());
            assert_eq!(fast.cycles(), reference.cycles(), "{what}: cycle count diverged");
            assert_eq!(fast.stalls, reference.stalls, "{what}: stall attribution diverged");
            assert_functional_identical(&fast, &reference, buf, &what);
        }
    }
}
