//! Capture-vs-replay bit-identity at the machine level.
//!
//! The `lva-retime` engine rests on one invariant: re-executing a captured
//! semantic trace through [`Machine::replay`] reproduces **every** timing
//! observable — cycles, stall attribution, VPU statistics, kernel-phase
//! timer, per-layer deltas and cache counters — bit-identically to the full
//! simulation that produced the trace, in both replay modes:
//!
//! * **live replay**: the recorded addresses drive a real memory hierarchy,
//!   valid at any design point (tested here across L2 sizes);
//! * **tape refit**: probes read serving levels from the capture's probe
//!   tape, valid at any config with the same state geometry (tested here
//!   across `IdealSpec` knobs, which change latencies but not state).
//!
//! Streams are randomized (seeded SplitMix64) over the full public op
//! surface including phases, layer markers, predication, reductions, scalar
//! charges and `reset_timing` segment boundaries.

use lva_isa::replay::{ProbeTape, ReplayTrace, SegmentReplay};
use lva_isa::{Buf, IdealKnob, KernelPhase, Machine, MachineConfig, PrefetchTarget};
use lva_sim::{AccessKind, Rng};

/// Working-set size in `f32` words: larger than the L1 so the stream
/// exercises misses, fills, writebacks and the prefetchers.
const ARENA_WORDS: usize = 1 << 15;

/// Vector registers the generated streams read and write.
const USED_REGS: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    Setvl { rvl: usize },
    Whilelt { i: usize, n: usize },
    Vle { vd: usize, off: usize, vl: usize },
    Vse { vs: usize, off: usize, vl: usize },
    Vlse { vd: usize, off: usize, stride: u64, vl: usize },
    Vsse { vs: usize, off: usize, stride: u64, vl: usize },
    Gather { vd: usize, idx: Vec<u32>, grouped: bool },
    Scatter { vs: usize, idx: Vec<u32>, grouped: bool },
    Fma { vd: usize, a: f32, vs: usize, vl: usize },
    FmaVv { vd: usize, va: usize, vb: usize, vl: usize },
    Mul { vd: usize, vs: usize, a: f32, vl: usize },
    Max { vd: usize, va: usize, vb: usize, vl: usize },
    Div { vd: usize, va: usize, vb: usize, vl: usize },
    Broadcast { vd: usize, x: f32, vl: usize },
    RedSum { vs: usize, vl: usize },
    RedMax { vs: usize, vl: usize },
    ScalarOps { n: u64 },
    ScalarFlops { n: u64 },
    ScalarRead { off: usize },
    ScalarWrite { off: usize, v: f32 },
    ScalarStream { off: usize, words: usize, write: bool },
    Prefetch { off: usize, target: PrefetchTarget },
    Spill,
}

fn random_indices(rng: &mut Rng, vl: usize) -> Vec<u32> {
    let mut idx = Vec::with_capacity(vl);
    while idx.len() < vl {
        if rng.gen_bool(0.1) {
            idx.push(u32::MAX);
        } else {
            idx.push(rng.gen_index(0, ARENA_WORDS) as u32);
        }
    }
    idx
}

fn random_stream(rng: &mut Rng, max_vl: usize, ops: usize) -> Vec<Op> {
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let vl = rng.gen_index(1, max_vl + 1);
        let vd = rng.gen_index(0, USED_REGS);
        let vs = rng.gen_index(0, USED_REGS);
        out.push(match rng.gen_index(0, 16) {
            0 => Op::Vle { vd, off: rng.gen_index(0, ARENA_WORDS - vl + 1), vl },
            1 => Op::Vse { vs, off: rng.gen_index(0, ARENA_WORDS - vl + 1), vl },
            2 => {
                let stride_words =
                    if rng.gen_bool(0.7) { rng.gen_range(0, 9) } else { rng.gen_range(9, 41) };
                let span = (vl - 1) * stride_words as usize + 1;
                let off = rng.gen_index(0, ARENA_WORDS - span + 1);
                let stride = 4 * stride_words;
                if rng.gen_bool(0.5) {
                    Op::Vlse { vd, off, stride, vl }
                } else {
                    Op::Vsse { vs, off, stride, vl }
                }
            }
            3 => Op::Gather { vd, idx: random_indices(rng, vl), grouped: rng.gen_bool(0.5) },
            4 => Op::Scatter { vs, idx: random_indices(rng, vl), grouped: rng.gen_bool(0.5) },
            5 => {
                let vs = if vs == vd { (vs + 1) % USED_REGS } else { vs };
                Op::Fma { vd, a: rng.next_f32_signed(), vs, vl }
            }
            6 => {
                let va = (vd + 1) % USED_REGS;
                let vb = (vd + 2) % USED_REGS;
                Op::FmaVv { vd, va, vb, vl }
            }
            7 => Op::Mul { vd, vs, a: rng.next_f32_signed(), vl },
            8 => Op::Max { vd, va: vs, vb: (vs + 1) % USED_REGS, vl },
            9 => {
                // Keep divisor lanes away from zero-heavy registers: timing
                // is data-independent, this only avoids NaN noise in regs.
                Op::Div { vd, va: vs, vb: (vs + 3) % USED_REGS, vl }
            }
            10 => Op::Broadcast { vd, x: rng.next_f32_signed(), vl },
            11 => {
                if rng.gen_bool(0.5) {
                    Op::RedSum { vs, vl }
                } else {
                    Op::RedMax { vs, vl }
                }
            }
            12 => match rng.gen_index(0, 3) {
                0 => Op::Setvl { rvl: rng.gen_index(1, 4 * max_vl) },
                1 => Op::Whilelt { i: rng.gen_index(0, 64), n: rng.gen_index(64, 256) },
                _ => Op::Spill,
            },
            13 => {
                if rng.gen_bool(0.5) {
                    Op::ScalarOps { n: rng.gen_range(1, 64) }
                } else {
                    Op::ScalarFlops { n: rng.gen_range(1, 16) }
                }
            }
            14 => {
                let words = rng.gen_index(1, 512);
                Op::ScalarStream {
                    off: rng.gen_index(0, ARENA_WORDS - words),
                    words,
                    write: rng.gen_bool(0.3),
                }
            }
            _ => match rng.gen_index(0, 3) {
                0 => Op::ScalarRead { off: rng.gen_index(0, ARENA_WORDS) },
                1 => {
                    Op::ScalarWrite { off: rng.gen_index(0, ARENA_WORDS), v: rng.next_f32_signed() }
                }
                _ => Op::Prefetch {
                    off: rng.gen_index(0, ARENA_WORDS),
                    target: if rng.gen_bool(0.5) { PrefetchTarget::L1 } else { PrefetchTarget::L2 },
                },
            },
        });
    }
    out
}

fn apply(m: &mut Machine, buf: Buf, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Setvl { rvl } => {
                let _ = m.setvl(*rvl);
            }
            Op::Whilelt { i, n } => {
                let _ = m.whilelt(*i, *n);
            }
            Op::Vle { vd, off, vl } => m.vle(*vd, buf.addr(*off), *vl),
            Op::Vse { vs, off, vl } => m.vse(*vs, buf.addr(*off), *vl),
            Op::Vlse { vd, off, stride, vl } => m.vlse(*vd, buf.addr(*off), *stride, *vl),
            Op::Vsse { vs, off, stride, vl } => m.vsse(*vs, buf.addr(*off), *stride, *vl),
            Op::Gather { vd, idx, grouped: false } => m.vgather(*vd, buf.addr(0), idx, idx.len()),
            Op::Gather { vd, idx, grouped: true } => m.vgather4(*vd, buf.addr(0), idx, idx.len()),
            Op::Scatter { vs, idx, grouped: false } => m.vscatter(*vs, buf.addr(0), idx, idx.len()),
            Op::Scatter { vs, idx, grouped: true } => m.vscatter4(*vs, buf.addr(0), idx, idx.len()),
            Op::Fma { vd, a, vs, vl } => m.vfmacc_vf(*vd, *a, *vs, *vl),
            Op::FmaVv { vd, va, vb, vl } => m.vfmacc_vv(*vd, *va, *vb, *vl),
            Op::Mul { vd, vs, a, vl } => m.vfmul_vf(*vd, *vs, *a, *vl),
            Op::Max { vd, va, vb, vl } => m.vfmax_vv(*vd, *va, *vb, *vl),
            Op::Div { vd, va, vb, vl } => {
                let (va, vb) = (*va, *vb);
                let (va, vb) = if va == *vd { ((va + 1) % USED_REGS, vb) } else { (va, vb) };
                let vb = if vb == *vd { (vb + 1) % USED_REGS } else { vb };
                let vb = if vb == va { (vb + 1) % USED_REGS } else { vb };
                if va != *vd && vb != *vd {
                    m.vfdiv_vv(*vd, va, vb, *vl);
                }
            }
            Op::Broadcast { vd, x, vl } => m.vbroadcast(*vd, *x, *vl),
            Op::RedSum { vs, vl } => {
                let _ = m.vfredsum(*vs, *vl);
            }
            Op::RedMax { vs, vl } => {
                let _ = m.vfredmax(*vs, *vl);
            }
            Op::ScalarOps { n } => m.charge_scalar_ops(*n),
            Op::ScalarFlops { n } => m.charge_scalar_flops(*n),
            Op::ScalarRead { off } => {
                let _ = m.scalar_read(buf.addr(*off));
            }
            Op::ScalarWrite { off, v } => m.scalar_write(buf.addr(*off), *v),
            Op::ScalarStream { off, words, write } => {
                let kind = if *write { AccessKind::Write } else { AccessKind::Read };
                m.scalar_stream(buf.addr(*off), *words, kind);
            }
            Op::Prefetch { off, target } => m.prefetch(buf.addr(*off), *target),
            Op::Spill => m.note_spill(),
        }
    }
}

/// Drive the full workload: a warmup segment, `reset_timing`, then two
/// "layers" wrapped in phases — the structure `lva-core` experiments have.
fn run_workload(m: &mut Machine, buf: Buf, seed: u64, max_vl: usize) {
    let mut rng = Rng::new(seed);
    let warmup = random_stream(&mut rng, max_vl, 60);
    apply(m, buf, &warmup);
    m.reset_timing();
    let body: Vec<Vec<Op>> = (0..2).map(|_| random_stream(&mut rng, max_vl, 220)).collect();
    for (i, ops) in body.iter().enumerate() {
        m.layer_begin(i, &format!("layer-{i}"));
        let (head, tail) = ops.split_at(ops.len() / 2);
        m.phase(KernelPhase::Gemm, |m| apply(m, buf, head));
        m.phase(KernelPhase::Activate, |m| apply(m, buf, tail));
        m.layer_end();
    }
}

/// Capture-run observables, collected identically from a live machine and
/// from a replay's final segment.
#[derive(Debug, PartialEq)]
struct Observables {
    cycles: u64,
    stalls: lva_isa::StallBreakdown,
    phases: lva_isa::PhaseTimer,
    vpu: lva_isa::VpuStats,
    mem: lva_sim::MemSystemStats,
}

fn observe(m: &Machine) -> Observables {
    Observables {
        cycles: m.cycles(),
        stalls: m.stalls,
        phases: m.phases.clone(),
        vpu: m.stats,
        mem: m.sys.stats(),
    }
}

fn observe_segment(seg: &SegmentReplay) -> Observables {
    Observables {
        cycles: seg.cycles,
        stalls: seg.stalls,
        phases: seg.phases.clone(),
        vpu: seg.vpu,
        mem: seg.mem,
    }
}

fn machine_with_arena(cfg: &MachineConfig, seed: u64) -> (Machine, Buf) {
    let mut m = Machine::new(cfg.clone());
    let buf = m.mem.alloc(ARENA_WORDS);
    let data = Rng::new(seed).f32_vec(ARENA_WORDS);
    m.mem.slice_mut(buf).copy_from_slice(&data);
    (m, buf)
}

/// Full simulation at `cfg` with capture on: returns the final observables,
/// the trace and the tape.
fn capture_run(cfg: &MachineConfig, seed: u64) -> (Observables, ReplayTrace, ProbeTape) {
    let (mut m, buf) = machine_with_arena(cfg, seed);
    m.start_capture();
    let max_vl = m.vlen_elems();
    run_workload(&mut m, buf, seed, max_vl);
    let obs = observe(&m);
    let (trace, tape) = m.finish_capture().expect("capture was started");
    (obs, trace, tape)
}

/// Full simulation at `cfg` without capture (the ground truth a replay at
/// that config must match).
fn full_run(cfg: &MachineConfig, seed: u64) -> Observables {
    let (mut m, buf) = machine_with_arena(cfg, seed);
    let max_vl = m.vlen_elems();
    run_workload(&mut m, buf, seed, max_vl);
    observe(&m)
}

fn design_points() -> Vec<(String, MachineConfig)> {
    vec![
        ("rvv/2048b".into(), MachineConfig::rvv_gem5(2048, 8, 1 << 20)),
        ("sve/512b".into(), MachineConfig::sve_gem5(512, 1 << 20)),
        ("a64fx".into(), MachineConfig::a64fx()),
    ]
}

#[test]
fn live_replay_matches_capture_bit_for_bit() {
    for (name, cfg) in design_points() {
        for seed in [3u64, 0xC0FFEE] {
            let (obs, trace, _tape) = capture_run(&cfg, seed);
            let mut m = Machine::new(cfg.clone());
            let segs = m.replay(&trace);
            assert_eq!(segs.len(), 2, "{name}: warmup + measured segment expected");
            assert_eq!(observe_segment(&segs[1]), obs, "{name} seed={seed:#x}: live replay");
            assert_eq!(segs[1].layers.len(), 2, "{name}: two layers recorded");
        }
    }
}

#[test]
fn tape_refit_matches_capture_bit_for_bit() {
    for (name, cfg) in design_points() {
        let (obs, trace, tape) = capture_run(&cfg, 7);
        let mut m = Machine::new(cfg.clone());
        m.play_probe_tape(std::sync::Arc::new(tape)).expect("same geometry");
        let segs = m.replay(&trace);
        assert_eq!(observe_segment(&segs[1]), obs, "{name}: tape refit");
    }
}

/// Live replay retargets *state-changing* axes: a capture at L2 = 1 MB
/// replayed against an L2 = 4 MB hierarchy must equal the full simulation
/// at 4 MB (same functional stream — the op list is config-independent).
#[test]
fn live_replay_retargets_l2_size() {
    let seed = 11u64;
    let (_, trace, _) = capture_run(&MachineConfig::rvv_gem5(2048, 8, 1 << 20), seed);
    let target = MachineConfig::rvv_gem5(2048, 8, 4 << 20);
    let truth = full_run(&target, seed);
    let mut m = Machine::new(target);
    let segs = m.replay(&trace);
    assert_eq!(observe_segment(&segs[1]), truth, "live replay at L2=4MB");
}

/// Tape refit retargets *timing-only* axes: the same tape re-timed under
/// each `IdealSpec` knob must equal the full simulation under that knob
/// (state geometry unchanged — the refit validity condition).
#[test]
fn tape_refit_retargets_ideal_knobs() {
    let seed = 13u64;
    let base = MachineConfig::rvv_gem5(2048, 8, 1 << 20);
    let (_, trace, tape) = capture_run(&base, seed);
    let tape = std::sync::Arc::new(tape);
    for knob in IdealKnob::ALL {
        let mut target = base.clone();
        target.ideal = knob.spec();
        let truth = full_run(&target, seed);
        let mut m = Machine::new(target);
        m.play_probe_tape(tape.clone()).expect("same geometry");
        let segs = m.replay(&trace);
        assert_eq!(observe_segment(&segs[1]), truth, "tape refit under {knob:?}");
    }
}

/// A tape recorded at one cache geometry must be refused at another.
#[test]
fn tape_geometry_mismatch_is_refused() {
    let (_, _, tape) = capture_run(&MachineConfig::rvv_gem5(2048, 8, 1 << 20), 17);
    let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 4 << 20));
    assert!(m.play_probe_tape(std::sync::Arc::new(tape)).is_err());
}
