//! Equivalence of the coalesced vector-memory fast paths against the
//! retained per-element reference model.
//!
//! The host-performance overhaul made `vle`/`vse` copy whole register rows,
//! `vlse`/`vsse` borrow the arena once per access, gathers/scatters index a
//! single borrowed window, and `strided_cost` step line-by-line instead of
//! element-by-element. None of that may change the *model*: cycles, VPU
//! statistics, stall attribution, per-level cache statistics, register
//! contents and memory contents must be bit-identical to the original
//! per-element implementations, which [`Machine::set_reference_model`]
//! retains verbatim.
//!
//! These tests drive both implementations with identical randomized op
//! streams (seeded SplitMix64, so failures reproduce) across the four
//! Table II design points and assert exact agreement on every observable.

use lva_isa::{Buf, Machine, MachineConfig, PrefetchTarget};
use lva_sim::Rng;

/// Table II / §V design points: RVV 2048-bit × 8 lanes (decoupled VPU with
/// the 2 KB vector cache) and SVE 512-bit (through-L1), each with the L2 at
/// 1 MB (the paper's default) and 4 MB (first sweep step).
fn design_points() -> Vec<(String, MachineConfig)> {
    let mut out = Vec::new();
    for l2 in [1usize << 20, 4 << 20] {
        out.push((format!("rvv/2048b/L2={}MB", l2 >> 20), MachineConfig::rvv_gem5(2048, 8, l2)));
        out.push((format!("sve/512b/L2={}MB", l2 >> 20), MachineConfig::sve_gem5(512, l2)));
    }
    out
}

/// Working-set size in `f32` words: larger than the L1 so the stream
/// exercises misses, fills, writebacks and the prefetchers, not just hits.
const ARENA_WORDS: usize = 1 << 15;

/// Vector registers the generated streams read and write.
const USED_REGS: usize = 8;

/// One generated vector-memory / compute op. Offsets are in words, strides
/// in bytes (always 4-aligned: the simulated arena is word-addressed).
#[derive(Debug, Clone)]
enum Op {
    Vle { vd: usize, off: usize, vl: usize },
    Vse { vs: usize, off: usize, vl: usize },
    Vlse { vd: usize, off: usize, stride: u64, vl: usize },
    Vsse { vs: usize, off: usize, stride: u64, vl: usize },
    Gather { vd: usize, off: usize, idx: Vec<u32>, grouped: bool },
    Scatter { vs: usize, off: usize, idx: Vec<u32>, grouped: bool },
    Fma { vd: usize, a: f32, vs: usize, vl: usize },
    ScalarRead { off: usize },
    ScalarWrite { off: usize, v: f32 },
    Prefetch { off: usize, target: PrefetchTarget },
}

/// Indices for a gather/scatter: random lanes over the whole arena with a
/// sprinkling of `u32::MAX` sentinels (predicated-out lanes) and short
/// consecutive runs, so both the dedup and the sentinel paths are hit.
fn random_indices(rng: &mut Rng, vl: usize) -> Vec<u32> {
    let mut idx = Vec::with_capacity(vl);
    while idx.len() < vl {
        if rng.gen_bool(0.1) {
            idx.push(u32::MAX);
        } else if rng.gen_bool(0.3) {
            // A consecutive run: consecutive lanes on the same line.
            let start = rng.gen_index(0, ARENA_WORDS - 8) as u32;
            for k in 0..rng.gen_range(2, 5) {
                if idx.len() < vl {
                    idx.push(start + k as u32);
                }
            }
        } else {
            idx.push(rng.gen_index(0, ARENA_WORDS) as u32);
        }
    }
    idx
}

fn random_stream(rng: &mut Rng, max_vl: usize, ops: usize) -> Vec<Op> {
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let vl = rng.gen_index(1, max_vl + 1);
        let vd = rng.gen_index(0, USED_REGS);
        let vs = rng.gen_index(0, USED_REGS);
        out.push(match rng.gen_index(0, 10) {
            0 => Op::Vle { vd, off: rng.gen_index(0, ARENA_WORDS - vl + 1), vl },
            1 => Op::Vse { vs, off: rng.gen_index(0, ARENA_WORDS - vl + 1), vl },
            2 | 3 => {
                // Strides from 0 to ~2.5 lines, in words; sub-line strides
                // are the interesting dedup regime so they dominate.
                let stride_words =
                    if rng.gen_bool(0.7) { rng.gen_range(0, 9) } else { rng.gen_range(9, 41) };
                let span = (vl - 1) * stride_words as usize + 1;
                let off = rng.gen_index(0, ARENA_WORDS - span + 1);
                let stride = 4 * stride_words;
                if rng.gen_bool(0.5) {
                    Op::Vlse { vd, off, stride, vl }
                } else {
                    Op::Vsse { vs, off, stride, vl }
                }
            }
            4 => Op::Gather { vd, off: 0, idx: random_indices(rng, vl), grouped: false },
            5 => Op::Scatter { vs, off: 0, idx: random_indices(rng, vl), grouped: false },
            6 => Op::Gather { vd, off: 0, idx: random_indices(rng, vl), grouped: true },
            7 => Op::Scatter { vs, off: 0, idx: random_indices(rng, vl), grouped: true },
            8 => {
                if rng.gen_bool(0.5) {
                    // The FMA reads vs and accumulates into vd; the register
                    // file hands out disjoint borrows, so keep them distinct.
                    let vs = if vs == vd { (vs + 1) % USED_REGS } else { vs };
                    Op::Fma { vd, a: rng.next_f32_signed(), vs, vl }
                } else {
                    Op::Prefetch {
                        off: rng.gen_index(0, ARENA_WORDS),
                        target: if rng.gen_bool(0.5) {
                            PrefetchTarget::L1
                        } else {
                            PrefetchTarget::L2
                        },
                    }
                }
            }
            _ => {
                if rng.gen_bool(0.5) {
                    Op::ScalarRead { off: rng.gen_index(0, ARENA_WORDS) }
                } else {
                    Op::ScalarWrite { off: rng.gen_index(0, ARENA_WORDS), v: rng.next_f32_signed() }
                }
            }
        });
    }
    out
}

/// Build a machine with a seeded arena; `reference` selects the model.
fn machine_with_arena(cfg: &MachineConfig, seed: u64, reference: bool) -> (Machine, Buf) {
    let mut m = Machine::new(cfg.clone());
    m.set_reference_model(reference);
    let buf = m.mem.alloc(ARENA_WORDS);
    let data = Rng::new(seed).f32_vec(ARENA_WORDS);
    m.mem.slice_mut(buf).copy_from_slice(&data);
    (m, buf)
}

fn apply(m: &mut Machine, buf: Buf, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Vle { vd, off, vl } => m.vle(*vd, buf.addr(*off), *vl),
            Op::Vse { vs, off, vl } => m.vse(*vs, buf.addr(*off), *vl),
            Op::Vlse { vd, off, stride, vl } => m.vlse(*vd, buf.addr(*off), *stride, *vl),
            Op::Vsse { vs, off, stride, vl } => m.vsse(*vs, buf.addr(*off), *stride, *vl),
            Op::Gather { vd, off, idx, grouped: false } => {
                m.vgather(*vd, buf.addr(*off), idx, idx.len());
            }
            Op::Gather { vd, off, idx, grouped: true } => {
                m.vgather4(*vd, buf.addr(*off), idx, idx.len());
            }
            Op::Scatter { vs, off, idx, grouped: false } => {
                m.vscatter(*vs, buf.addr(*off), idx, idx.len());
            }
            Op::Scatter { vs, off, idx, grouped: true } => {
                m.vscatter4(*vs, buf.addr(*off), idx, idx.len());
            }
            Op::Fma { vd, a, vs, vl } => m.vfmacc_vf(*vd, *a, *vs, *vl),
            Op::ScalarRead { off } => {
                let _ = m.scalar_read(buf.addr(*off));
            }
            Op::ScalarWrite { off, v } => m.scalar_write(buf.addr(*off), *v),
            Op::Prefetch { off, target } => m.prefetch(buf.addr(*off), *target),
        }
    }
}

/// Assert every observable agrees exactly: timing, statistics, stall
/// attribution, cache counters, register file, and memory (the latter two
/// compared as bits, so `-0.0` vs `0.0` or NaN payloads cannot slip by).
fn assert_equivalent(fast: &Machine, reference: &Machine, buf: Buf, what: &str) {
    assert_eq!(fast.cycles(), reference.cycles(), "{what}: cycle count diverged");
    assert_eq!(fast.stats, reference.stats, "{what}: VpuStats diverged");
    assert_eq!(fast.stalls, reference.stalls, "{what}: stall attribution diverged");
    assert_eq!(fast.sys.stats(), reference.sys.stats(), "{what}: cache statistics diverged");
    for r in 0..USED_REGS {
        let (a, b) = (fast.vreg(r), reference.vreg(r));
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{what}: register v{r} contents diverged"
        );
    }
    let (a, b) = (fast.mem.slice(buf), reference.mem.slice(buf));
    assert!(
        a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: memory contents diverged"
    );
}

#[test]
fn randomized_streams_agree_on_every_design_point() {
    for (name, cfg) in design_points() {
        for seed in [1u64, 0xBEEF, 0x5EED_CAFE] {
            let max_vl = Machine::new(cfg.clone()).vlen_elems();
            let ops = random_stream(&mut Rng::new(seed), max_vl, 400);
            let (mut fast, buf) = machine_with_arena(&cfg, seed, false);
            let (mut reference, _) = machine_with_arena(&cfg, seed, true);
            assert!(!fast.is_reference_model() && reference.is_reference_model());
            apply(&mut fast, buf, &ops);
            apply(&mut reference, buf, &ops);
            assert_equivalent(&fast, &reference, buf, &format!("{name} seed={seed:#x}"));
        }
    }
}

/// Satellite regression for the `strided_cost` fix: with a stride smaller
/// than a line, several consecutive elements share a line and the original
/// per-element loop relied on consecutive-duplicate dedup to probe it once.
/// The skip-ahead loop must keep that exactly — same cycles, same cache
/// counters — for every sub-line (and super-line) stride.
#[test]
fn strided_sub_line_costs_match_reference_exactly() {
    for (name, cfg) in design_points() {
        for stride_words in [0u64, 1, 2, 3, 5, 8, 15, 16, 17, 32, 64] {
            let run = |reference: bool| {
                let (mut m, buf) = machine_with_arena(&cfg, 7, reference);
                let vl = m.vlen_elems();
                let span = (vl - 1) * stride_words as usize + 1;
                // March the access window forward so it cycles between
                // cold misses, hits, and prefetched lines.
                let mut off = 0usize;
                for _ in 0..64 {
                    if off + span > ARENA_WORDS {
                        off = 0;
                    }
                    m.vlse(1, buf.addr(off), 4 * stride_words, vl);
                    m.vsse(1, buf.addr(off), 4 * stride_words, vl);
                    off += span.max(3);
                }
                (m, buf)
            };
            let (fast, buf) = run(false);
            let (reference, _) = run(true);
            assert_equivalent(
                &fast,
                &reference,
                buf,
                &format!("{name} stride={}B", 4 * stride_words),
            );
        }
    }
}
