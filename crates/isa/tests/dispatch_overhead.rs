//! The observability hooks (vector-op recorder, pipeline-interval recorder,
//! memory-system tap) must be pure observers: timing-neutral while enabled,
//! and — the host-performance contract — back to the branch-predictable
//! no-op fast path once disabled, with no residue in the model.

use std::cell::Cell;
use std::rc::Rc;

use lva_isa::{Machine, MachineConfig};
use lva_sim::{AccessKind, AccessSink, TapLevel};

/// A counting sink: observation only, shared counter for the assertion.
struct CountSink(Rc<Cell<u64>>);

impl AccessSink for CountSink {
    fn access(&mut self, _level: TapLevel, _line: u64, _kind: AccessKind, _hit: bool) {
        self.0.set(self.0.get() + 1);
    }
}

/// A fixed little workload: streaming loads, FMAs, stores — enough traffic
/// to produce vector events, pipeline intervals, and tap callbacks.
fn workload(m: &mut Machine) {
    let buf = match m.mem.allocs().first() {
        Some(r) => r.buf,
        None => m.mem.alloc(4096),
    };
    let vl = m.vlen_elems().min(512);
    for rep in 0..8 {
        let mut off = 0;
        while off + vl <= buf.words {
            m.vle(1, buf.addr(off), vl);
            m.vfmacc_vf(2, 1.5 + rep as f32, 1, vl);
            m.vse(2, buf.addr(off), vl);
            off += vl;
        }
    }
}

#[test]
fn hooks_are_timing_neutral_and_disable_restores_the_fast_path() {
    let cfg = MachineConfig::rvv_gem5(2048, 8, 1 << 20);

    // Plain machine, run twice (second run over a warm cache) — the
    // baseline for both the enabled and the disabled comparison.
    let mut plain = Machine::new(cfg.clone());
    workload(&mut plain);
    let cold_cycles = plain.cycles();
    plain.reset_timing();
    workload(&mut plain);
    let warm_cycles = plain.cycles();

    // Instrumented machine: all three hooks on.
    let mut m = Machine::new(cfg);
    let taps = Rc::new(Cell::new(0u64));
    m.record_events();
    m.record_pipe_events();
    m.sys.set_tap(Box::new(CountSink(Rc::clone(&taps))));
    assert!(m.is_recording() && m.is_recording_pipe() && m.sys.has_tap());

    workload(&mut m);
    assert_eq!(m.cycles(), cold_cycles, "hooks must be timing-neutral while enabled");
    assert!(!m.take_events().is_empty(), "recorder saw no vector events");
    assert!(!m.take_pipe_events().is_empty(), "pipe recorder saw no intervals");
    assert!(m.sys.take_tap().is_some(), "tap should still be installed");
    assert!(taps.get() > 0, "tap saw no accesses");

    // Everything disabled again: the dispatch sites must behave exactly
    // like a machine that never had hooks — same warm-cache timing.
    assert!(!m.is_recording() && !m.is_recording_pipe() && !m.sys.has_tap());
    m.reset_timing();
    workload(&mut m);
    assert_eq!(m.cycles(), warm_cycles, "disabling the hooks must restore the fast path");
    assert!(m.take_events().is_empty());
    assert!(m.take_pipe_events().is_empty());
    assert_eq!(m.pipe_events_dropped(), 0);
}
