//! Integration tests of the vector engine's indexed and structured memory
//! operations, predication semantics, and timing-model invariants that the
//! in-module unit tests do not cover.

use lva_isa::{Machine, MachineConfig, PrefetchTarget};
use lva_sim::Rng;

fn sve(vlen: usize) -> Machine {
    Machine::new(MachineConfig::sve_gem5(vlen, 1 << 20))
}

#[test]
fn masked_gather_loads_zero_on_sentinel() {
    let mut m = sve(512);
    let buf = m.mem.alloc(32);
    for i in 0..32 {
        m.mem.write(buf, i, (i + 1) as f32);
    }
    let idx = [0u32, u32::MAX, 2, u32::MAX, 4, 5, u32::MAX, 7];
    m.vgather(3, buf.base, &idx, 8);
    let r = m.vreg(3);
    assert_eq!(&r[..8], &[1.0, 0.0, 3.0, 0.0, 5.0, 6.0, 0.0, 8.0]);
}

#[test]
fn masked_scatter_skips_sentinel_lanes() {
    let mut m = sve(512);
    let src = m.mem.alloc(16);
    let dst = m.mem.alloc(16);
    for i in 0..8 {
        m.mem.write(src, i, (10 + i) as f32);
    }
    m.vle(2, src.addr(0), 8);
    let idx = [0u32, u32::MAX, 1, u32::MAX, 2, u32::MAX, 3, u32::MAX];
    m.vscatter(2, dst.base, &idx, 8);
    assert_eq!(&m.mem.slice(dst)[..5], &[10.0, 12.0, 14.0, 16.0, 0.0]);
}

#[test]
fn structured_gather4_matches_general_gather() {
    let mut m = sve(1024);
    let buf = m.mem.alloc(256);
    for i in 0..256 {
        m.mem.write(buf, i, (i * 3) as f32);
    }
    let idx: Vec<u32> = (0..32u32).map(|l| (l / 4) * 17 + l % 4).collect();
    m.vgather(1, buf.base, &idx, 32);
    m.vgather4(2, buf.base, &idx, 32);
    assert_eq!(m.vreg(1)[..32], m.vreg(2)[..32], "same functional semantics");
}

#[test]
fn structured_gather4_is_cheaper_than_general() {
    let cost = |structured: bool| {
        let mut m = sve(1024);
        let buf = m.mem.alloc(4096);
        let idx: Vec<u32> = (0..32u32).map(|l| (l / 4) * 64 + l % 4).collect();
        // Warm the cache so the comparison is pure issue cost.
        for _ in 0..4 {
            m.vgather(1, buf.base, &idx, 32);
        }
        let t0 = m.cycles();
        for _ in 0..64 {
            if structured {
                m.vgather4(1, buf.base, &idx, 32);
            } else {
                m.vgather(1, buf.base, &idx, 32);
            }
        }
        m.cycles() - t0
    };
    let general = cost(false);
    let structured = cost(true);
    assert!(
        structured * 2 < general,
        "4-element-group gather should be much cheaper: {structured} vs {general}"
    );
}

#[test]
fn structured_scatter4_roundtrip() {
    let mut m = sve(512);
    let a = m.mem.alloc(64);
    let b = m.mem.alloc(64);
    for i in 0..16 {
        m.mem.write(a, i, i as f32);
    }
    m.vle(1, a.addr(0), 16);
    // Transpose-style pattern: groups of 4 at stride 8, sentinel tail.
    let mut idx: Vec<u32> = (0..16u32).map(|l| (l / 4) * 8 + l % 4).collect();
    idx[15] = u32::MAX;
    m.vscatter4(1, b.base, &idx, 16);
    assert_eq!(m.mem.read(b, 0), 0.0);
    assert_eq!(m.mem.read(b, 8), 4.0);
    assert_eq!(m.mem.read(b, 16), 8.0);
    assert_eq!(m.mem.read(b, 27), 0.0, "sentinel lane must not store");
}

#[test]
fn sw_prefetch_is_noop_on_gem5_sve_but_charged_as_issue() {
    let mut m = sve(512);
    let buf = m.mem.alloc(1024);
    let before = m.cycles();
    m.prefetch(buf.addr(512), PrefetchTarget::L1);
    assert!(m.cycles() >= before, "prefetch may cost an issue slot");
    assert_eq!(m.stats.sw_prefetches, 1);
    // The line must NOT be resident (gem5 treats prefetch as a no-op).
    use lva_sim::AccessKind;
    let (lvl, _) = m.sys.demand_scalar(buf.addr(512), AccessKind::Read);
    assert_eq!(lvl, lva_sim::MemLevel::Dram);
}

/// Gather/scatter are inverses through any permutation.
#[test]
fn gather_scatter_permutation_roundtrip() {
    let mut rng = Rng::new(0x9a77e5);
    for _ in 0..32 {
        let mut m = sve(2048);
        let src = m.mem.alloc(64);
        let dst = m.mem.alloc(64);
        let data: Vec<f32> = (0..64).map(|i| (i as f32) * 1.5 + 1.0).collect();
        m.mem.slice_mut(src).copy_from_slice(&data);
        let mut idx: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut idx);
        m.vgather(4, src.base, &idx, 64);
        m.vscatter(4, dst.base, &idx, 64);
        assert_eq!(m.mem.slice(dst), &data[..]);
    }
}

/// setvl covers any n exactly once for any hardware vector length.
#[test]
fn setvl_tiling_covers_exactly() {
    let mut rng = Rng::new(0x5e7f1);
    for _ in 0..32 {
        let n = rng.gen_index(0, 5000);
        let vlen_pow = rng.gen_range(4, 10) as u32;
        let mut m = Machine::new(MachineConfig::rvv_gem5(32 << vlen_pow, 8, 1 << 20));
        let mut covered = 0usize;
        let mut i = 0usize;
        while i < n {
            let vl = m.setvl(n - i);
            assert!(vl >= 1 && vl <= m.vlen_elems());
            covered += vl;
            i += vl;
        }
        assert_eq!(covered, n);
    }
}

/// Cycle counts are monotone: appending work never reduces the clock.
#[test]
fn clock_is_monotone() {
    let mut rng = Rng::new(0xc10c);
    for _ in 0..32 {
        let mut m = sve(512);
        let buf = m.mem.alloc(256);
        let mut last = m.cycles();
        let len = rng.gen_index(1, 80);
        for k in 0..len {
            match rng.gen_index(0, 5) {
                0 => m.vle(1, buf.addr((k * 16) % 240), 16),
                1 => m.vfmacc_vf(2, 1.5, 1, 16),
                2 => m.vse(2, buf.addr((k * 16) % 240), 16),
                3 => m.charge_scalar_ops(3),
                _ => m.vbroadcast(3, k as f32, 16),
            }
            let now = m.cycles();
            assert!(now >= last);
            last = now;
        }
    }
}
