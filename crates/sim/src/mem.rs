//! Simulated flat memory: an arena of `f32` words with byte addressing.
//!
//! The functional half of the simulator operates on real `f32` data stored in
//! one contiguous `Vec<f32>`; the timing half (the cache hierarchy) sees byte
//! addresses derived from the arena layout. Buffers are bump-allocated and
//! aligned to cache-line boundaries so that distinct buffers never share a
//! line, mirroring how `malloc`'d matrices behave in the original Darknet
//! code.

/// Base virtual address of the arena. Non-zero so that "address 0" bugs trap.
pub const ARENA_BASE: u64 = 0x0001_0000;

/// Alignment of every allocation, in `f32` words (64 B = one typical line).
pub const ALLOC_ALIGN_WORDS: usize = 16;

/// A handle to a contiguous buffer of `f32` words inside a [`Memory`] arena.
///
/// `Buf` is `Copy` and carries no lifetime; it is validated against the arena
/// on access. Addresses are in bytes, like the hardware would see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buf {
    /// First byte address of the buffer.
    pub base: u64,
    /// Length in `f32` words.
    pub words: usize,
}

impl Buf {
    /// Byte address of element `idx`.
    ///
    /// # Panics
    /// Panics in debug builds if `idx` is out of bounds.
    #[inline]
    pub fn addr(&self, idx: usize) -> u64 {
        debug_assert!(idx < self.words, "Buf::addr: index {idx} out of {} words", self.words);
        self.base + 4 * idx as u64
    }

    /// Byte length of the buffer.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.words * 4
    }

    /// A sub-buffer spanning `words` elements starting at element `offset`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[inline]
    pub fn slice(&self, offset: usize, words: usize) -> Buf {
        assert!(
            offset + words <= self.words,
            "Buf::slice: range {offset}..{} exceeds {} words",
            offset + words,
            self.words
        );
        Buf { base: self.base + 4 * offset as u64, words }
    }
}

/// One live allocation: its handle plus a human-readable label, kept so
/// out-of-range accesses and sanitizer findings can name the buffer they
/// concern instead of reporting a bare address.
#[derive(Debug, Clone)]
pub struct AllocRecord {
    /// Label given at allocation time (`"buf{n}"` if unnamed).
    pub label: String,
    /// The handle returned to the caller (unpadded extent).
    pub buf: Buf,
}

impl AllocRecord {
    /// Whether byte address `addr` falls inside this allocation.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.buf.base && addr < self.buf.base + self.buf.bytes() as u64
    }
}

/// The simulated memory arena.
///
/// All tensors, packed matrices, and scratch buffers used by the simulated
/// kernels live here. Allocation is a bump pointer: the CNN inference working
/// set is allocated once per network and reused across layers, exactly like
/// Darknet's `workspace` buffer.
#[derive(Debug)]
pub struct Memory {
    data: Vec<f32>,
    /// Next free word offset.
    next: usize,
    /// High-water mark of words ever allocated (for reporting).
    peak: usize,
    /// Registry of live allocations, in address order (bump allocator).
    allocs: Vec<AllocRecord>,
}

impl Memory {
    /// Create an arena able to hold `capacity_words` `f32` elements.
    pub fn new(capacity_words: usize) -> Self {
        Memory { data: vec![0.0; capacity_words], next: 0, peak: 0, allocs: Vec::new() }
    }

    /// Create an arena sized in mebibytes.
    pub fn with_mib(mib: usize) -> Self {
        Self::new(mib * 1024 * 1024 / 4)
    }

    /// Allocate a zero-initialised buffer of `words` elements with an
    /// auto-generated label (`"buf{n}"`).
    ///
    /// # Panics
    /// Panics if the arena is exhausted; size the arena for the workload.
    pub fn alloc(&mut self, words: usize) -> Buf {
        let label = format!("buf{}", self.allocs.len());
        self.alloc_named(&label, words)
    }

    /// Allocate a zero-initialised buffer of `words` elements, registered
    /// under `label` so that diagnostics can name it.
    ///
    /// # Panics
    /// Panics if the arena is exhausted; size the arena for the workload.
    pub fn alloc_named(&mut self, label: &str, words: usize) -> Buf {
        let base_word = self.next;
        let padded = words.div_ceil(ALLOC_ALIGN_WORDS) * ALLOC_ALIGN_WORDS;
        assert!(
            base_word + padded <= self.data.len(),
            "simulated memory exhausted: requested {} words, {} of {} in use",
            words,
            self.next,
            self.data.len()
        );
        self.next += padded;
        self.peak = self.peak.max(self.next);
        // Bump allocation over a zeroed arena: fresh region, already zero
        // unless `reset` reused it.
        for w in &mut self.data[base_word..base_word + words] {
            *w = 0.0;
        }
        let buf = Buf { base: ARENA_BASE + 4 * base_word as u64, words };
        self.allocs.push(AllocRecord { label: label.to_string(), buf });
        buf
    }

    /// Allocate and fill from a host slice.
    pub fn alloc_from(&mut self, src: &[f32]) -> Buf {
        let buf = self.alloc(src.len());
        self.slice_mut(buf).copy_from_slice(src);
        buf
    }

    /// Release everything allocated so far (the data is left in place until
    /// overwritten). Buffers handed out earlier must not be used afterwards.
    pub fn reset(&mut self) {
        self.next = 0;
        self.allocs.clear();
    }

    /// The registry of live allocations, in address order.
    pub fn allocs(&self) -> &[AllocRecord] {
        &self.allocs
    }

    /// The allocation containing byte address `addr`, if any.
    pub fn find_alloc(&self, addr: u64) -> Option<&AllocRecord> {
        self.allocs.iter().find(|r| r.contains(addr))
    }

    /// Validate that the byte range `[lo, hi)` lies inside the allocated
    /// portion of the arena. On failure, returns a message naming the
    /// nearest buffer (the one containing `lo`, or the last one before it)
    /// so the caller can report which `Buf` an access overran.
    ///
    /// This is the *coarse* check used for hard failures: accesses inside
    /// alignment padding between buffers are accepted here (kernels may
    /// legitimately read whole lines); per-allocation precision is the
    /// out-of-bounds sanitizer pass's job.
    pub fn check_range(&self, lo: u64, hi: u64) -> Result<(), String> {
        let end = ARENA_BASE + 4 * self.next as u64;
        if lo >= ARENA_BASE && hi <= end && lo <= hi {
            return Ok(());
        }
        let culprit = self
            .find_alloc(lo)
            .or_else(|| self.allocs.iter().rev().find(|r| r.buf.base <= lo))
            .or_else(|| self.allocs.first());
        let near = match culprit {
            Some(r) => format!(
                "nearest buffer `{}` spans {:#x}..{:#x} ({} words)",
                r.label,
                r.buf.base,
                r.buf.base + r.buf.bytes() as u64,
                r.buf.words
            ),
            None => "no buffers allocated".to_string(),
        };
        Err(format!(
            "address range {lo:#x}..{hi:#x} outside allocated arena {ARENA_BASE:#x}..{end:#x}; \
             {near}"
        ))
    }

    /// Words currently allocated.
    pub fn used_words(&self) -> usize {
        self.next
    }

    /// High-water mark in words.
    pub fn peak_words(&self) -> usize {
        self.peak
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn word_index(&self, buf: Buf) -> usize {
        debug_assert!(buf.base >= ARENA_BASE, "Buf from a different arena");
        ((buf.base - ARENA_BASE) / 4) as usize
    }

    /// Immutable view of a buffer's data.
    #[inline]
    pub fn slice(&self, buf: Buf) -> &[f32] {
        let w = self.word_index(buf);
        &self.data[w..w + buf.words]
    }

    /// Mutable view of a buffer's data.
    #[inline]
    pub fn slice_mut(&mut self, buf: Buf) -> &mut [f32] {
        let w = self.word_index(buf);
        &mut self.data[w..w + buf.words]
    }

    /// Two disjoint mutable views (e.g. pack source and destination).
    ///
    /// # Panics
    /// Panics if the buffers overlap.
    pub fn slice_mut2(&mut self, a: Buf, b: Buf) -> (&mut [f32], &mut [f32]) {
        let wa = self.word_index(a);
        let wb = self.word_index(b);
        assert!(wa + a.words <= wb || wb + b.words <= wa, "slice_mut2: overlapping buffers");
        if wa < wb {
            let (lo, hi) = self.data.split_at_mut(wb);
            (&mut lo[wa..wa + a.words], &mut hi[..b.words])
        } else {
            let (lo, hi) = self.data.split_at_mut(wa);
            let (bs, as_) = (&mut lo[wb..wb + b.words], &mut hi[..a.words]);
            (as_, bs)
        }
    }

    /// Read one element.
    #[inline]
    pub fn read(&self, buf: Buf, idx: usize) -> f32 {
        self.slice(buf)[idx]
    }

    /// Write one element.
    #[inline]
    pub fn write(&mut self, buf: Buf, idx: usize, v: f32) {
        self.slice_mut(buf)[idx] = v;
    }

    /// Immutable view of `n` words starting at absolute byte address `addr`
    /// (must be in-arena and 4-byte aligned).
    #[inline]
    pub fn words(&self, addr: u64, n: usize) -> &[f32] {
        debug_assert!(addr >= ARENA_BASE && addr.is_multiple_of(4));
        let w = ((addr - ARENA_BASE) / 4) as usize;
        &self.data[w..w + n]
    }

    /// Mutable view of `n` words starting at absolute byte address `addr`.
    #[inline]
    pub fn words_mut(&mut self, addr: u64, n: usize) -> &mut [f32] {
        debug_assert!(addr >= ARENA_BASE && addr.is_multiple_of(4));
        let w = ((addr - ARENA_BASE) / 4) as usize;
        &mut self.data[w..w + n]
    }

    /// Raw word read by absolute byte address (must be in-arena and aligned).
    #[inline]
    pub fn read_addr(&self, addr: u64) -> f32 {
        debug_assert!(addr >= ARENA_BASE && addr.is_multiple_of(4));
        self.data[((addr - ARENA_BASE) / 4) as usize]
    }

    /// Raw word write by absolute byte address.
    #[inline]
    pub fn write_addr(&mut self, addr: u64, v: f32) {
        debug_assert!(addr >= ARENA_BASE && addr.is_multiple_of(4));
        self.data[((addr - ARENA_BASE) / 4) as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut m = Memory::new(1024);
        let a = m.alloc(5);
        let b = m.alloc(17);
        assert_eq!(a.base % 64, 0);
        assert_eq!(b.base % 64, 0);
        assert!(a.base + a.bytes() as u64 <= b.base);
    }

    #[test]
    fn alloc_zeroes_after_reset_reuse() {
        let mut m = Memory::new(64);
        let a = m.alloc(8);
        m.slice_mut(a).fill(3.0);
        m.reset();
        let b = m.alloc(8);
        assert!(m.slice(b).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new(256);
        let a = m.alloc(10);
        m.write(a, 3, 1.5);
        assert_eq!(m.read(a, 3), 1.5);
        assert_eq!(m.read_addr(a.addr(3)), 1.5);
        m.write_addr(a.addr(4), 2.5);
        assert_eq!(m.read(a, 4), 2.5);
    }

    #[test]
    fn sub_buffer_addresses() {
        let mut m = Memory::new(256);
        let a = m.alloc(64);
        let s = a.slice(16, 8);
        assert_eq!(s.base, a.base + 64);
        assert_eq!(s.words, 8);
        m.write(a, 16, 7.0);
        assert_eq!(m.read(s, 0), 7.0);
    }

    #[test]
    fn slice_mut2_disjoint_both_orders() {
        let mut m = Memory::new(256);
        let a = m.alloc(16);
        let b = m.alloc(16);
        {
            let (sa, sb) = m.slice_mut2(a, b);
            sa.fill(1.0);
            sb.fill(2.0);
        }
        let (sb, sa) = m.slice_mut2(b, a);
        assert!(sb.iter().all(|&x| x == 2.0));
        assert!(sa.iter().all(|&x| x == 1.0));
    }

    #[test]
    #[should_panic(expected = "memory exhausted")]
    fn exhaustion_panics() {
        let mut m = Memory::new(16);
        let _ = m.alloc(8);
        let _ = m.alloc(16);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn slice_mut2_overlap_panics() {
        let mut m = Memory::new(256);
        let a = m.alloc(32);
        let sub = a.slice(8, 8);
        let _ = m.slice_mut2(a, sub);
    }

    #[test]
    fn named_allocs_are_registered_and_found() {
        let mut m = Memory::new(1024);
        let a = m.alloc_named("weights", 10);
        let b = m.alloc(5);
        assert_eq!(m.allocs().len(), 2);
        assert_eq!(m.allocs()[0].label, "weights");
        assert_eq!(m.allocs()[1].label, "buf1");
        assert_eq!(m.find_alloc(a.addr(3)).unwrap().label, "weights");
        assert_eq!(m.find_alloc(b.addr(0)).unwrap().buf, b);
        // Padding between allocations belongs to no buffer.
        assert!(m.find_alloc(a.base + a.bytes() as u64).is_none());
        m.reset();
        assert!(m.allocs().is_empty());
    }

    #[test]
    fn check_range_accepts_allocated_and_names_culprit() {
        let mut m = Memory::new(1024);
        let a = m.alloc_named("im2col", 32);
        assert!(m.check_range(a.base, a.base + a.bytes() as u64).is_ok());
        // Padding within the allocated bump region is coarse-OK.
        assert!(m.check_range(a.base, a.base + 64).is_ok());
        let err = m.check_range(a.base, a.base + 4096).unwrap_err();
        assert!(err.contains("im2col"), "error must name the buffer: {err}");
        assert!(m.check_range(0, 4).is_err(), "below the arena base");
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut m = Memory::new(1024);
        let _ = m.alloc(100);
        m.reset();
        let _ = m.alloc(10);
        assert!(m.peak_words() >= 100);
        assert!(m.used_words() < 100);
    }
}
