//! Opt-in timing-idealization knobs for counterfactual profiling.
//!
//! Correlational stall attribution (`StallBreakdown`) answers "where did the
//! cycles go"; the co-design question is causal: "how many cycles come back
//! if a co-designer *fixes* this subsystem". An [`IdealSpec`] selects
//! subsystems to idealize; `lva-whatif` reruns a workload once per knob and
//! measures the recovery directly.
//!
//! Every knob is **timing-only** by construction: cache state transitions,
//! statistics, functional memory and register contents, and recorded event
//! streams are bit-identical to the factual run — only returned latencies
//! (here) and occupancy/latency arithmetic (in `lva_isa::Machine`) change.
//! With all knobs off the arithmetic is the identity, so cycle counts are
//! bit-identical too, pinned the same way `Machine::set_reference_model` is.

/// Which subsystems to idealize. All off ([`IdealSpec::NONE`], the default)
/// is the factual machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealSpec {
    /// The first memory level a request meets (L1 for scalar and through-L1
    /// vector accesses, the vector cache on the decoupled-VPU path) always
    /// serves at its hit latency. State transitions still happen, so the
    /// miss counters are untouched — only the *cost* of missing vanishes.
    pub perfect_l1: bool,
    /// L2 misses cost the L2 hit latency: DRAM latency vanishes (the
    /// infinite-L2 limit of the paper's Fig. 7/9 capacity axis).
    pub perfect_l2: bool,
    /// Vector start-up is free: pipeline fill depth and lane ramp
    /// (`startup() = pipe_depth + lanes`) cost zero cycles (§V's overhead
    /// that longer vectors amortize).
    pub zero_vector_startup: bool,
    /// Infinitely wide datapath: every lane-throughput occupancy (chime,
    /// register-file fill transfers, per-element gather/scatter slots)
    /// completes in one cycle. Exposed miss time is untouched.
    pub infinite_lanes: bool,
    /// Infinite issue bandwidth: the dead `inter_instr_gap` cycles between
    /// consecutive vector instructions vanish.
    pub infinite_issue: bool,
}

impl IdealSpec {
    /// The factual machine: no idealization.
    pub const NONE: IdealSpec = IdealSpec {
        perfect_l1: false,
        perfect_l2: false,
        zero_vector_startup: false,
        infinite_lanes: false,
        infinite_issue: false,
    };

    /// Whether any knob is on.
    pub fn any(self) -> bool {
        self != Self::NONE
    }

    /// Short `+knob` summary (empty for [`Self::NONE`]), for report labels.
    pub fn describe(self) -> String {
        let mut out = String::new();
        for knob in IdealKnob::ALL {
            if knob.spec().is_subset_of(self) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push('+');
                out.push_str(knob.name());
            }
        }
        out
    }

    fn is_subset_of(self, other: IdealSpec) -> bool {
        (!self.perfect_l1 || other.perfect_l1)
            && (!self.perfect_l2 || other.perfect_l2)
            && (!self.zero_vector_startup || other.zero_vector_startup)
            && (!self.infinite_lanes || other.infinite_lanes)
            && (!self.infinite_issue || other.infinite_issue)
    }
}

/// One idealization knob; the unit of counterfactual analysis. `lva-whatif`
/// runs one counterfactual per knob and classifies each layer by the knob
/// that recovers the most cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdealKnob {
    PerfectL1,
    PerfectL2,
    ZeroVectorStartup,
    InfiniteLanes,
    InfiniteIssue,
}

impl IdealKnob {
    /// Every knob, in the canonical (deterministic) analysis order.
    pub const ALL: [IdealKnob; 5] = [
        IdealKnob::PerfectL1,
        IdealKnob::PerfectL2,
        IdealKnob::ZeroVectorStartup,
        IdealKnob::InfiniteLanes,
        IdealKnob::InfiniteIssue,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            IdealKnob::PerfectL1 => "perfect_l1",
            IdealKnob::PerfectL2 => "perfect_l2",
            IdealKnob::ZeroVectorStartup => "zero_vector_startup",
            IdealKnob::InfiniteLanes => "infinite_lanes",
            IdealKnob::InfiniteIssue => "infinite_issue",
        }
    }

    /// The spec with only this knob on.
    pub fn spec(self) -> IdealSpec {
        let mut s = IdealSpec::NONE;
        match self {
            IdealKnob::PerfectL1 => s.perfect_l1 = true,
            IdealKnob::PerfectL2 => s.perfect_l2 = true,
            IdealKnob::ZeroVectorStartup => s.zero_vector_startup = true,
            IdealKnob::InfiniteLanes => s.infinite_lanes = true,
            IdealKnob::InfiniteIssue => s.infinite_issue = true,
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_default_and_empty() {
        assert_eq!(IdealSpec::default(), IdealSpec::NONE);
        assert!(!IdealSpec::NONE.any());
        assert_eq!(IdealSpec::NONE.describe(), "");
    }

    #[test]
    fn each_knob_spec_turns_exactly_one_field_on() {
        for knob in IdealKnob::ALL {
            let s = knob.spec();
            assert!(s.any(), "{knob:?}");
            let on = u32::from(s.perfect_l1)
                + u32::from(s.perfect_l2)
                + u32::from(s.zero_vector_startup)
                + u32::from(s.infinite_lanes)
                + u32::from(s.infinite_issue);
            assert_eq!(on, 1, "{knob:?}");
            assert_eq!(s.describe(), format!("+{}", knob.name()));
        }
    }

    #[test]
    fn knob_names_are_unique_and_ordered() {
        let names: Vec<_> = IdealKnob::ALL.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert_eq!(names[0], "perfect_l1");
    }

    #[test]
    fn describe_combines_knobs_in_canonical_order() {
        let s = IdealSpec { perfect_l2: true, infinite_issue: true, ..IdealSpec::NONE };
        assert_eq!(s.describe(), "+perfect_l2 +infinite_issue");
    }
}
