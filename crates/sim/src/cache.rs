//! Set-associative, true-LRU, write-allocate / write-back cache model.
//!
//! The model is timing-directed, not data-carrying: data always lives in the
//! [`crate::Memory`] arena; the cache tracks only which lines are resident,
//! their LRU order, and dirtiness, and counts hits/misses/writebacks. This is
//! the same separation gem5's classic caches make between functional and
//! timing state in syscall-emulation mode.

/// Whether an access reads or writes the line (writes set the dirty bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Static geometry and latency of one cache level.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Human-readable name used in reports ("L1D", "L2", "VC").
    pub name: &'static str,
    /// Total capacity in bytes. Must be a multiple of `line_bytes * assoc`.
    pub bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Access (hit) latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        let sets = self.bytes / (self.line_bytes * self.assoc);
        assert!(sets > 0, "{}: capacity smaller than one set", self.name);
        assert!(
            sets * self.line_bytes * self.assoc == self.bytes,
            "{}: capacity {} not divisible by line*assoc",
            self.name,
            self.bytes
        );
        assert!(sets.is_power_of_two(), "{}: set count {} not a power of two", self.name, sets);
        assert!(self.line_bytes.is_power_of_two());
        sets
    }
}

/// 3C classification of demand misses (Hill's taxonomy): *compulsory*
/// misses touch a line for the first time ever (an infinite cache would
/// also miss), *capacity* misses would recur in a fully-associative LRU
/// cache of the same size (reuse distance ≥ capacity), and *conflict*
/// misses are the remainder — set-contention artifacts a fully-associative
/// cache of the same size would have avoided.
///
/// The cache model itself cannot classify its own misses (it has no
/// infinite/fully-associative shadow); the counters are filled in by the
/// `lva-prof` reuse-distance profiler when a run is profiled, and stay zero
/// otherwise. `classified()` distinguishes "never profiled" from "profiled,
/// zero misses".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Miss3C {
    pub compulsory: u64,
    pub capacity: u64,
    pub conflict: u64,
}

impl Miss3C {
    /// Total classified misses (0 ⇒ the run was not profiled or never
    /// missed).
    pub fn classified(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Merge counters from another block.
    pub fn merge(&mut self, other: &Miss3C) {
        self.compulsory += other.compulsory;
        self.capacity += other.capacity;
        self.conflict += other.conflict;
    }
}

/// Aggregate counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    /// Dirty lines evicted (write-back traffic).
    pub writebacks: u64,
    /// Lines installed by a prefetcher rather than a demand miss.
    pub prefetch_fills: u64,
    /// Demand misses that hit a prefetched line before its first use.
    pub prefetch_hits: u64,
    /// 3C classification of `misses`, filled in by `lva-prof` when the run
    /// is profiled (all-zero otherwise; see [`Miss3C`]).
    pub three_c: Miss3C,
}

impl CacheStats {
    /// Miss rate over demand accesses, in `[0,1]`. Zero when never accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate over demand accesses, in `[0,1]`. Zero when never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Prefetcher accuracy: the fraction of prefetched lines that served a
    /// demand access before eviction, in `[0,1]`. Zero when nothing was
    /// prefetched.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetch_fills == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetch_fills as f64
        }
    }

    /// Merge counters from another stats block.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_hits += other.prefetch_hits;
        self.three_c.merge(&other.three_c);
    }
}

/// Outcome of a demand access, reported to the caller so the next level can
/// be probed and so writeback traffic can be accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    Hit,
    /// Line was not resident; it has been allocated. `victim_dirty` says
    /// whether the eviction produced a writeback to the next level.
    Miss {
        victim_dirty: bool,
    },
}

const INVALID: u64 = u64::MAX;

/// Per-way metadata bit: the line has been written since installation.
const DIRTY: u8 = 1;
/// Per-way metadata bit: installed by a prefetcher, not yet demanded.
const PREFETCHED: u8 = 2;

/// One cache level. See module docs.
///
/// Ways are stored as two parallel flat arrays (`tags` / `meta`) rather than
/// an array of structs: the LRU scan in [`Self::access_line`] — the hottest
/// loop in the simulator — then touches one densely packed `u64` per way,
/// and a whole 8-way set of tags fits in a single host cache line.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    set_shift: u32,
    /// `sets - 1`: set index mask, hoisted out of the hot loop.
    set_mask: usize,
    /// `log2(sets)`: how far a line shifts to become a tag.
    tag_shift: u32,
    /// `sets * assoc` line tags, per-set in LRU order: index 0 is MRU.
    /// `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// Dirty/prefetched flag bits, parallel to `tags`.
    meta: Vec<u8>,
    pub stats: CacheStats,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(cfg.assoc >= 1 && cfg.assoc <= 256, "associativity out of supported range");
        Cache {
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            tag_shift: sets.trailing_zeros(),
            tags: vec![INVALID; sets * cfg.assoc],
            meta: vec![0; sets * cfg.assoc],
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line index (address divided by line size).
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.set_shift
    }

    /// Invalidate all lines and keep statistics.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.meta.fill(0);
    }

    /// Reset statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_range(&self, line: u64) -> (usize, u64) {
        let set = (line as usize) & self.set_mask;
        let tag = line >> self.tag_shift;
        (set * self.cfg.assoc, tag)
    }

    /// Demand access to the line containing `addr` (line-granular: callers
    /// must deduplicate element accesses within one line themselves when that
    /// matters for counting).
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> Lookup {
        self.stats.accesses += 1;
        let (base, tag) = self.set_range(line);
        let assoc = self.cfg.assoc;
        // MRU fast path: spatial/temporal locality makes way 0 serve the
        // bulk of all hits, and no rotation is needed there.
        if self.tags[base] == tag {
            self.stats.hits += 1;
            let m = &mut self.meta[base];
            if *m & PREFETCHED != 0 {
                self.stats.prefetch_hits += 1;
                *m &= !PREFETCHED;
            }
            if kind == AccessKind::Write {
                *m |= DIRTY;
            }
            return Lookup::Hit;
        }
        // Search the remaining ways.
        for i in 1..assoc {
            if self.tags[base + i] == tag {
                self.stats.hits += 1;
                let mut m = self.meta[base + i];
                if m & PREFETCHED != 0 {
                    self.stats.prefetch_hits += 1;
                    m &= !PREFETCHED;
                }
                if kind == AccessKind::Write {
                    m |= DIRTY;
                }
                // Move to MRU position (both parallel arrays rotate).
                self.tags[base..=base + i].rotate_right(1);
                self.meta[base..=base + i].rotate_right(1);
                self.meta[base] = m;
                return Lookup::Hit;
            }
        }
        // Miss: evict LRU way (last slot) and install at MRU.
        self.stats.misses += 1;
        let last = base + assoc - 1;
        let victim_dirty = self.tags[last] != INVALID && self.meta[last] & DIRTY != 0;
        if victim_dirty {
            self.stats.writebacks += 1;
        }
        self.tags[base..=last].rotate_right(1);
        self.meta[base..=last].rotate_right(1);
        self.tags[base] = tag;
        self.meta[base] = if kind == AccessKind::Write { DIRTY } else { 0 };
        Lookup::Miss { victim_dirty }
    }

    /// Install a line via a prefetcher. Returns `true` if the line was newly
    /// installed (a no-op if already resident; does not bump LRU in that case
    /// to avoid prefetch pollution of recency).
    pub fn prefetch_line(&mut self, line: u64) -> bool {
        let (base, tag) = self.set_range(line);
        let assoc = self.cfg.assoc;
        if self.tags[base..base + assoc].contains(&tag) {
            return false;
        }
        let last = base + assoc - 1;
        let victim_dirty = self.tags[last] != INVALID && self.meta[last] & DIRTY != 0;
        if victim_dirty {
            self.stats.writebacks += 1;
        }
        self.tags[base..=last].rotate_right(1);
        self.meta[base..=last].rotate_right(1);
        self.tags[base] = tag;
        self.meta[base] = PREFETCHED;
        self.stats.prefetch_fills += 1;
        true
    }

    /// Whether the line containing `addr` is resident (no state change).
    pub fn contains_line(&self, line: u64) -> bool {
        let (base, tag) = self.set_range(line);
        self.tags[base..base + self.cfg.assoc].contains(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig { name: "T", bytes: 512, line_bytes: 64, assoc: 2, hit_latency: 1 })
    }

    /// A never-accessed cache must report rates of exactly 0.0 — never NaN
    /// (0/0) — so downstream JSON reports and tolerance comparisons stay
    /// well-defined without per-call-site guards.
    #[test]
    fn zero_access_rates_are_zero_not_nan() {
        let fresh = CacheStats::default();
        for r in [fresh.hit_rate(), fresh.miss_rate(), fresh.prefetch_accuracy()] {
            assert!(!r.is_nan(), "zero-denominator rate must not be NaN");
            assert_eq!(r, 0.0);
        }
        // Same through a real (untouched) cache level.
        let c = small();
        assert_eq!(c.stats.hit_rate(), 0.0);
        assert_eq!(c.stats.miss_rate(), 0.0);
        assert_eq!(c.stats.prefetch_accuracy(), 0.0);
        assert_eq!(c.stats.three_c.classified(), 0);
    }

    #[test]
    fn miss_3c_merge_adds_counters() {
        let mut a = Miss3C { compulsory: 1, capacity: 2, conflict: 3 };
        let b = Miss3C { compulsory: 10, capacity: 20, conflict: 30 };
        a.merge(&b);
        assert_eq!(a, Miss3C { compulsory: 11, capacity: 22, conflict: 33 });
        assert_eq!(a.classified(), 66);
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().sets(), 4);
        assert_eq!(c.line_of(64), 1);
        assert_eq!(c.line_of(63), 0);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = small();
        assert!(matches!(c.access_line(0, AccessKind::Read), Lookup::Miss { .. }));
        assert_eq!(c.access_line(0, AccessKind::Read), Lookup::Hit);
        assert_eq!(c.stats.accesses, 2);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0: line = k * sets (sets = 4).
        let (a, b, d) = (0u64, 4u64, 8u64);
        c.access_line(a, AccessKind::Read);
        c.access_line(b, AccessKind::Read);
        c.access_line(a, AccessKind::Read); // a is MRU, b is LRU
        c.access_line(d, AccessKind::Read); // evicts b
        assert!(c.contains_line(a));
        assert!(!c.contains_line(b));
        assert!(c.contains_line(d));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = small();
        c.access_line(0, AccessKind::Write);
        c.access_line(4, AccessKind::Read);
        let r = c.access_line(8, AccessKind::Read); // evicts dirty line 0
        assert_eq!(r, Lookup::Miss { victim_dirty: true });
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small();
        c.access_line(0, AccessKind::Read);
        c.access_line(4, AccessKind::Read);
        let r = c.access_line(8, AccessKind::Read);
        assert_eq!(r, Lookup::Miss { victim_dirty: false });
        assert_eq!(c.stats.writebacks, 0);
    }

    #[test]
    fn prefetch_fill_then_demand_hit() {
        let mut c = small();
        assert!(c.prefetch_line(0));
        assert!(!c.prefetch_line(0));
        assert_eq!(c.access_line(0, AccessKind::Read), Lookup::Hit);
        assert_eq!(c.stats.prefetch_fills, 1);
        assert_eq!(c.stats.prefetch_hits, 1);
        // Second demand access is a plain hit, not a prefetch hit.
        c.access_line(0, AccessKind::Read);
        assert_eq!(c.stats.prefetch_hits, 1);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access_line(0, AccessKind::Write);
        c.flush();
        assert!(!c.contains_line(0));
        assert!(matches!(c.access_line(0, AccessKind::Read), Lookup::Miss { victim_dirty: false }));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        for line in 0..4 {
            c.access_line(line, AccessKind::Read);
        }
        for line in 0..4 {
            assert_eq!(c.access_line(line, AccessKind::Read), Lookup::Hit);
        }
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            name: "bad",
            bytes: 500, // not divisible by 64*2
            line_bytes: 64,
            assoc: 2,
            hit_latency: 1,
        });
    }

    /// LRU inclusion property: on the same trace, a cache with the same
    /// associativity geometry but more sets can only have fewer-or-equal
    /// misses for traces that stay within one set's worth of conflict...
    /// The strong property that holds for *fully-associative* LRU is
    /// capacity-monotonicity, checked here with assoc = capacity/line.
    #[test]
    fn fully_assoc_lru_miss_monotone_in_capacity() {
        let mk = |lines: usize| {
            Cache::new(CacheConfig {
                name: "FA",
                bytes: lines * 64,
                line_bytes: 64,
                assoc: lines,
                hit_latency: 1,
            })
        };
        let trace: Vec<u64> = (0..1000u64).map(|i| (i * 7919) % 37).collect();
        let mut last = u64::MAX;
        for lines in [4usize, 8, 16, 32] {
            let mut c = mk(lines);
            for &l in &trace {
                c.access_line(l, AccessKind::Read);
            }
            assert!(c.stats.misses <= last, "misses must not increase with capacity");
            last = c.stats.misses;
        }
    }

    /// Randomized property: splitting a counter block into arbitrary shards
    /// and re-merging must reproduce the whole, and the derived rates of the
    /// merge must equal the rates of the pooled counters (merge is counter
    /// addition, never rate averaging).
    #[test]
    fn merge_and_rates_consistent_under_arbitrary_splits() {
        let mut rng = crate::rng::Rng::new(0xca5e);
        for _ in 0..200 {
            // A random "whole" with hits+misses = accesses and plausible
            // prefetch counters.
            let hits = rng.gen_range(0, 10_000);
            let misses = rng.gen_range(0, 10_000);
            let prefetch_fills = rng.gen_range(0, 1000);
            let whole = CacheStats {
                accesses: hits + misses,
                hits,
                misses,
                writebacks: rng.gen_range(0, 1000),
                prefetch_fills,
                prefetch_hits: rng.gen_range(0, prefetch_fills + 1),
                ..CacheStats::default()
            };
            // Split every counter independently at a random point.
            let cut = |total: u64, rng: &mut crate::rng::Rng| {
                let a = if total == 0 { 0 } else { rng.gen_range(0, total + 1) };
                (a, total - a)
            };
            let (a_acc, b_acc) = cut(whole.accesses, &mut rng);
            let (a_hit, b_hit) = cut(whole.hits, &mut rng);
            let (a_mis, b_mis) = cut(whole.misses, &mut rng);
            let (a_wb, b_wb) = cut(whole.writebacks, &mut rng);
            let (a_pf, b_pf) = cut(whole.prefetch_fills, &mut rng);
            let (a_ph, b_ph) = cut(whole.prefetch_hits, &mut rng);
            let a = CacheStats {
                accesses: a_acc,
                hits: a_hit,
                misses: a_mis,
                writebacks: a_wb,
                prefetch_fills: a_pf,
                prefetch_hits: a_ph,
                ..CacheStats::default()
            };
            let b = CacheStats {
                accesses: b_acc,
                hits: b_hit,
                misses: b_mis,
                writebacks: b_wb,
                prefetch_fills: b_pf,
                prefetch_hits: b_ph,
                ..CacheStats::default()
            };
            let mut merged = a;
            merged.merge(&b);
            assert_eq!(merged.accesses, whole.accesses);
            assert_eq!(merged.hits, whole.hits);
            assert_eq!(merged.misses, whole.misses);
            assert_eq!(merged.writebacks, whole.writebacks);
            assert_eq!(merged.prefetch_fills, whole.prefetch_fills);
            assert_eq!(merged.prefetch_hits, whole.prefetch_hits);
            assert_eq!(merged.miss_rate(), whole.miss_rate());
            assert_eq!(merged.hit_rate(), whole.hit_rate());
            assert_eq!(merged.prefetch_accuracy(), whole.prefetch_accuracy());
            // Rates stay in range and hit + miss rates partition demand.
            // Rates stay in range and hit + miss rates partition demand —
            // for blocks that are internally consistent (shards split each
            // counter independently, so only check the ones that are).
            for s in [&a, &b, &merged] {
                if s.hits + s.misses == s.accesses {
                    assert!((0.0..=1.0).contains(&s.miss_rate()));
                    if s.accesses > 0 {
                        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
                    }
                }
                if s.prefetch_hits <= s.prefetch_fills {
                    assert!((0.0..=1.0).contains(&s.prefetch_accuracy()));
                }
            }
        }
    }
}
