//! The two-level memory system with both vector-unit integration styles
//! studied in the paper.
//!
//! *RISC-V Vector @ gem5*: the VPU is **decoupled** and attached to the L2; a
//! small 2 KB vector cache buffers its line traffic, and vector accesses never
//! touch the L1 (§III-A). This is why the BLIS-like 6-loop blocking, which
//! tries to stage the A matrix in L1, buys nothing on that platform (§VI-A).
//!
//! *ARM-SVE*: vector registers are filled **through the L1** like scalar
//! accesses (§III-A), so L1 blocking and prefetching pay off (§VI-C).

use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats, Lookup};
use crate::ideal::IdealSpec;
use crate::prefetch::{PrefetchTarget, StridePrefetcher, StridePrefetcherConfig};
use crate::shared::SharedPortHandle;
use crate::tap::{AccessSink, TapLevel, TapScope};

/// Which level ultimately served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    L1,
    VectorCache,
    L2,
    Dram,
}

impl MemLevel {
    /// Compact encoding for probe tapes (see `lva-isa`'s replay module).
    #[inline]
    pub fn to_u8(self) -> u8 {
        match self {
            MemLevel::L1 => 0,
            MemLevel::VectorCache => 1,
            MemLevel::L2 => 2,
            MemLevel::Dram => 3,
        }
    }

    /// Inverse of [`Self::to_u8`].
    #[inline]
    pub fn from_u8(v: u8) -> MemLevel {
        match v {
            0 => MemLevel::L1,
            1 => MemLevel::VectorCache,
            2 => MemLevel::L2,
            _ => MemLevel::Dram,
        }
    }
}

/// Hit latency of the small fully-associative vector cache on the decoupled
/// VPU path (the 2 KB buffer in the paper's gem5 fork).
pub const VCACHE_HIT_LATENCY: u32 = 2;

/// How vector memory operations reach the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpuPath {
    /// SVE style: vector lanes load/store through the L1 data cache.
    ThroughL1,
    /// RISC-V Vector style: the decoupled VPU reads/writes the L2 through a
    /// small dedicated vector cache (2 KB in the paper's gem5 fork).
    DecoupledL2 {
        /// Capacity of the vector cache in bytes (fully associative).
        vcache_bytes: usize,
    },
}

/// Full memory-system configuration.
#[derive(Debug, Clone)]
pub struct MemSystemConfig {
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    /// DRAM access latency in cycles (beyond the L2 lookup).
    pub mem_latency: u32,
    pub vpu_path: VpuPath,
    /// Hardware stride prefetcher (A64FX); `None` on the gem5 profiles.
    pub hw_prefetch: Option<StridePrefetcherConfig>,
    /// Whether software prefetch instructions install lines. RISC-V Vector
    /// has no prefetch instructions (the compiler drops the intrinsics) and
    /// gem5's SVE treats them as no-ops; only the A64FX profile enables this.
    pub sw_prefetch_effective: bool,
}

impl MemSystemConfig {
    /// Fingerprint of everything that determines cache **state transitions**
    /// (and therefore per-access serving levels): capacities, associativity,
    /// line size, prefetcher configuration, and the VPU path — but *not* the
    /// per-level hit/DRAM latencies, which only scale the latency returned
    /// for a given serving level (see [`MemSystem::served_latency`]). Two
    /// configs with equal fingerprints produce identical serving-level
    /// sequences for the same access stream; that is the validity condition
    /// for probe-tape reuse in `lva-isa` trace replay.
    pub fn state_fingerprint(&self) -> String {
        let geom = |c: &CacheConfig| format!("{}b/{}l/{}w", c.bytes, c.line_bytes, c.assoc);
        format!(
            "l1={};l2={};path={:?};hwpf={:?};swpf={}",
            geom(&self.l1),
            geom(&self.l2),
            self.vpu_path,
            self.hw_prefetch,
            self.sw_prefetch_effective,
        )
    }

    /// Consistency checks shared by all constructors.
    fn validate(&self) {
        assert_eq!(
            self.l1.line_bytes, self.l2.line_bytes,
            "mixed line sizes between levels are not modelled"
        );
        if let VpuPath::DecoupledL2 { vcache_bytes } = self.vpu_path {
            assert!(vcache_bytes >= self.l1.line_bytes, "vector cache smaller than a line");
        }
    }
}

/// Statistics snapshot across all levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemSystemStats {
    pub l1: CacheStats,
    pub l2: CacheStats,
    pub vcache: CacheStats,
    pub dram_reads: u64,
    pub dram_writes: u64,
    /// Lines the hardware stride prefetcher asked to install (0 when the
    /// platform has no prefetcher). Accuracy is derived per level from
    /// `prefetch_fills` / `prefetch_hits` via
    /// [`CacheStats::prefetch_accuracy`].
    pub hwpf_issued: u64,
}

/// The assembled hierarchy. See module docs.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemSystemConfig,
    pub l1: Cache,
    pub l2: Cache,
    pub vcache: Option<Cache>,
    hwpf: Option<StridePrefetcher>,
    pf_scratch: Vec<u64>,
    /// `log2(line_bytes)`, precomputed so the per-access address→line
    /// mapping is a shift rather than a division.
    line_shift: u32,
    pub dram_reads: u64,
    pub dram_writes: u64,
    /// Opt-in address-stream observer (see [`crate::tap`]). `None` (the
    /// default) costs one branch per access; when installed it sees every
    /// per-level access after the cache classified it. Pure observation —
    /// latencies and cache state are bit-identical with or without a tap.
    tap: Option<Box<dyn AccessSink>>,
    /// Counterfactual idealization knobs (see [`crate::ideal`]). Timing-only:
    /// every lookup, state transition, statistic, and tap report happens
    /// exactly as in the factual run; only the *returned latency* is clamped.
    /// With [`IdealSpec::NONE`] (the default) latencies are bit-identical.
    ideal: IdealSpec,
    /// Attachment to a multi-core shared L2/DRAM port (see [`crate::shared`]).
    /// `None` — the default and the whole single-core world — keeps the
    /// private L2 path below.
    shared: Option<SharedAttachment>,
}

/// Per-core state of a [`SharedPortHandle`] attachment.
#[derive(Debug)]
struct SharedAttachment {
    port: SharedPortHandle,
    /// This core's index at the port.
    core: usize,
    /// This core's current front-end cycle, published by the SoC event loop
    /// before each replayed instruction (see [`MemSystem::set_port_now`]).
    now: u64,
    /// Port arbitration wait cycles accumulated since the last drain.
    pending: u64,
}

impl MemSystem {
    pub fn new(cfg: MemSystemConfig) -> Self {
        cfg.validate();
        let vcache = match cfg.vpu_path {
            VpuPath::ThroughL1 => None,
            VpuPath::DecoupledL2 { vcache_bytes } => {
                let lines = vcache_bytes / cfg.l1.line_bytes;
                Some(Cache::new(CacheConfig {
                    name: "VC",
                    bytes: vcache_bytes,
                    line_bytes: cfg.l1.line_bytes,
                    assoc: lines, // fully associative
                    hit_latency: VCACHE_HIT_LATENCY,
                }))
            }
        };
        let hwpf = cfg.hw_prefetch.map(StridePrefetcher::new);
        assert!(cfg.l1.line_bytes.is_power_of_two(), "line size must be a power of two");
        let line_shift = cfg.l1.line_bytes.trailing_zeros();
        MemSystem {
            l1: Cache::new(cfg.l1.clone()),
            l2: Cache::new(cfg.l2.clone()),
            vcache,
            hwpf,
            pf_scratch: Vec::with_capacity(8),
            dram_reads: 0,
            dram_writes: 0,
            tap: None,
            ideal: IdealSpec::NONE,
            shared: None,
            line_shift,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Shared L2/DRAM port (the `lva-scale` hook)
    // ------------------------------------------------------------------

    /// Attach this (per-core) memory system to a multi-core shared port as
    /// `core`. From then on all L2 traffic — demand fills, dirty writebacks,
    /// prefetch installs — routes to the shared cache and arbitrates for
    /// port bandwidth; the private L2 array sits cold. DRAM transfer
    /// *counters* stay per-core (each core's fills remain attributable),
    /// while the shared-L2 statistics live on the port.
    pub fn attach_shared_port(&mut self, port: SharedPortHandle, core: usize) {
        self.shared = Some(SharedAttachment { port, core, now: 0, pending: 0 });
    }

    /// Whether a shared port is attached.
    pub fn has_shared_port(&self) -> bool {
        self.shared.is_some()
    }

    /// Publish the attached core's current front-end cycle: subsequent
    /// shared-port transactions arbitrate at this time. No-op without an
    /// attachment.
    #[inline]
    pub fn set_port_now(&mut self, now: u64) {
        if let Some(sh) = self.shared.as_mut() {
            sh.now = now;
        }
    }

    /// Drain the shared-port wait cycles accumulated since the last call.
    /// The `lva-isa` machine drains this after every memory instruction and
    /// charges the cycles to the `Contention` stall cause. Always zero
    /// without an attachment — one branch is all the single-core world pays.
    #[inline]
    pub fn take_contention(&mut self) -> u64 {
        match self.shared.as_mut() {
            None => 0,
            Some(sh) => std::mem::take(&mut sh.pending),
        }
    }

    // ------------------------------------------------------------------
    // Counterfactual idealization (the `lva-whatif` hook)
    // ------------------------------------------------------------------

    /// Select which memory levels to idealize (see [`crate::ideal`]). Only
    /// the `perfect_l1` / `perfect_l2` knobs matter here; the VPU-side knobs
    /// are consumed by `lva_isa::Machine`.
    pub fn set_ideal(&mut self, spec: IdealSpec) {
        self.ideal = spec;
    }

    /// The active idealization spec.
    pub fn ideal(&self) -> IdealSpec {
        self.ideal
    }

    // ------------------------------------------------------------------
    // Address-stream tap (the `lva-prof` hook)
    // ------------------------------------------------------------------

    /// Install an address-stream observer (replacing any previous one).
    pub fn set_tap(&mut self, sink: Box<dyn AccessSink>) {
        self.tap = Some(sink);
    }

    /// Remove and return the installed observer, if any.
    pub fn take_tap(&mut self) -> Option<Box<dyn AccessSink>> {
        self.tap.take()
    }

    /// Whether an observer is installed.
    pub fn has_tap(&self) -> bool {
        self.tap.is_some()
    }

    /// Forward a layer/phase boundary to the tap (no-op without one). Called
    /// by `lva-nn` (layers) and `lva-isa` (kernel phases) so a profiler can
    /// attribute accesses to scopes without those crates depending on it.
    #[inline]
    pub fn tap_scope(&mut self, scope: TapScope<'_>) {
        if let Some(t) = self.tap.as_mut() {
            t.scope(scope);
        }
    }

    /// Report a prefetch fill to the tap (no-op without one).
    #[inline]
    fn tap_prefetch(&mut self, level: TapLevel, line: u64) {
        if let Some(t) = self.tap.as_mut() {
            t.prefetch_fill(level, line);
        }
    }

    /// Report a DRAM line transfer to the tap (no-op without one).
    #[inline]
    fn tap_dram(&mut self, kind: AccessKind) {
        if let Some(t) = self.tap.as_mut() {
            t.dram_transfer(kind);
        }
    }

    /// L1 demand access, reported to the tap.
    #[inline]
    fn l1_access(&mut self, line: u64, kind: AccessKind) -> Lookup {
        let r = self.l1.access_line(line, kind);
        if let Some(t) = self.tap.as_mut() {
            t.access(TapLevel::L1, line, kind, matches!(r, Lookup::Hit));
        }
        r
    }

    /// L2 demand access (demand misses from above *and* dirty writebacks),
    /// reported to the tap. Routed to the shared port when one is attached.
    #[inline]
    fn l2_access(&mut self, line: u64, kind: AccessKind) -> Lookup {
        let r = match self.shared.as_mut() {
            None => self.l2.access_line(line, kind),
            Some(sh) => {
                let (r, wait) = sh.port.borrow_mut().l2_access(sh.core, line, kind, sh.now);
                sh.pending += wait;
                r
            }
        };
        if let Some(t) = self.tap.as_mut() {
            t.access(TapLevel::L2, line, kind, matches!(r, Lookup::Hit));
        }
        r
    }

    /// Prefetcher install into the L2, routed to the shared port when one
    /// is attached (state change only; prefetches claim no port time).
    #[inline]
    fn l2_prefetch(&mut self, line: u64) -> bool {
        match self.shared.as_mut() {
            None => self.l2.prefetch_line(line),
            Some(sh) => sh.port.borrow_mut().prefetch_line(line),
        }
    }

    /// The (uniform) cache line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> usize {
        self.cfg.l1.line_bytes
    }

    /// Configuration used to build the system.
    pub fn config(&self) -> &MemSystemConfig {
        &self.cfg
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> MemSystemStats {
        MemSystemStats {
            l1: self.l1.stats,
            l2: self.l2.stats,
            vcache: self.vcache.as_ref().map(|c| c.stats).unwrap_or_default(),
            dram_reads: self.dram_reads,
            dram_writes: self.dram_writes,
            hwpf_issued: self.hwpf.as_ref().map_or(0, |p| p.issued),
        }
    }

    /// Reset all statistics (cache contents are preserved), e.g. after the
    /// network-setup phase which the paper excludes from measurements.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        if let Some(vc) = &mut self.vcache {
            vc.reset_stats();
        }
        self.dram_reads = 0;
        self.dram_writes = 0;
        if let Some(pf) = &mut self.hwpf {
            pf.issued = 0;
        }
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// L2 access with DRAM fallback; returns the level that served the line.
    /// Pure state transition — the latency for the level is computed
    /// separately by [`Self::served_latency`].
    fn l2_then_mem(&mut self, line: u64, kind: AccessKind) -> MemLevel {
        match self.l2_access(line, kind) {
            Lookup::Hit => MemLevel::L2,
            Lookup::Miss { victim_dirty } => {
                if victim_dirty {
                    self.dram_writes += 1;
                    self.tap_dram(AccessKind::Write);
                }
                self.dram_reads += 1;
                self.tap_dram(AccessKind::Read);
                MemLevel::Dram
            }
        }
    }

    /// Latency of an access served by `level`, as a **pure function** of the
    /// configured per-level latencies and the idealization spec. `vector`
    /// selects the VPU's first level (the 2-cycle vector cache on the
    /// decoupled path); scalar accesses always start at the L1. Under
    /// `perfect_l1` every access costs only its first level's hit latency;
    /// under `perfect_l2` a DRAM-served access costs only an L2 hit.
    ///
    /// Both the live demand paths below and probe-tape replay in `lva-isa`
    /// compute latencies through this one function — which is what makes
    /// replayed timings bit-identical to live simulation by construction.
    #[inline]
    pub fn served_latency(&self, level: MemLevel, vector: bool) -> u32 {
        let first = if vector && matches!(self.cfg.vpu_path, VpuPath::DecoupledL2 { .. }) {
            VCACHE_HIT_LATENCY
        } else {
            self.cfg.l1.hit_latency
        };
        let beyond = match level {
            MemLevel::L1 | MemLevel::VectorCache => 0,
            MemLevel::L2 => self.cfg.l2.hit_latency,
            MemLevel::Dram => {
                self.cfg.l2.hit_latency
                    + if self.ideal.perfect_l2 { 0 } else { self.cfg.mem_latency }
            }
        };
        let beyond = if self.ideal.perfect_l1 { 0 } else { beyond };
        first + beyond
    }

    /// Feed the hardware prefetcher with a demand line; install predictions.
    fn train_hw_prefetch(&mut self, line: u64) {
        let Some(pf) = &mut self.hwpf else { return };
        // Take the scratch buffer to appease the borrow checker.
        let mut scratch = std::mem::take(&mut self.pf_scratch);
        pf.observe(line, &mut scratch);
        for &l in &scratch {
            // Prefetches fill L2 and L1 (next-level inclusive fill).
            if self.l2_prefetch(l) {
                self.tap_prefetch(TapLevel::L2, l);
            }
            if self.l1.prefetch_line(l) {
                self.tap_prefetch(TapLevel::L1, l);
            }
        }
        self.pf_scratch = scratch;
    }

    /// Demand access from the **scalar** core: always L1 → L2 → DRAM.
    /// Returns the serving level and full latency in cycles.
    pub fn demand_scalar(&mut self, addr: u64, kind: AccessKind) -> (MemLevel, u32) {
        let line = self.line_of(addr);
        self.train_hw_prefetch(line);
        let lvl = match self.l1_access(line, kind) {
            Lookup::Hit => MemLevel::L1,
            Lookup::Miss { victim_dirty } => {
                if victim_dirty {
                    // L1 writeback lands in L2 (write access, counts traffic).
                    self.l2_access(line, AccessKind::Write);
                }
                self.l2_then_mem(line, kind)
            }
        };
        (lvl, self.served_latency(lvl, false))
    }

    /// Demand access from the **vector** unit; the route depends on
    /// [`VpuPath`]. Line-granular: callers pass one representative address
    /// per distinct line touched by the vector operation.
    pub fn demand_vector(&mut self, addr: u64, kind: AccessKind) -> (MemLevel, u32) {
        self.demand_vector_opts(addr, kind, true)
    }

    /// [`Self::demand_vector`] with explicit prefetcher training control.
    /// Indexed (gather/scatter) accesses do not train stream prefetchers on
    /// real hardware; their irregular line sequences would only pollute the
    /// stride table.
    pub fn demand_vector_opts(
        &mut self,
        addr: u64,
        kind: AccessKind,
        train: bool,
    ) -> (MemLevel, u32) {
        let line = self.line_of(addr);
        let lvl = match self.cfg.vpu_path {
            VpuPath::ThroughL1 => {
                // Same path as scalar accesses (SVE).
                if train {
                    self.train_hw_prefetch(line);
                }
                match self.l1_access(line, kind) {
                    Lookup::Hit => MemLevel::L1,
                    Lookup::Miss { victim_dirty } => {
                        if victim_dirty {
                            self.l2_access(line, AccessKind::Write);
                        }
                        self.l2_then_mem(line, kind)
                    }
                }
            }
            VpuPath::DecoupledL2 { .. } => {
                let vc = self.vcache.as_mut().expect("decoupled path has a vector cache");
                let r = vc.access_line(line, kind);
                if let Some(t) = self.tap.as_mut() {
                    t.access(TapLevel::VectorCache, line, kind, matches!(r, Lookup::Hit));
                }
                match r {
                    Lookup::Hit => MemLevel::VectorCache,
                    Lookup::Miss { victim_dirty } => {
                        if victim_dirty {
                            self.l2_access(line, AccessKind::Write);
                        }
                        // The vector cache is the VPU's first level here.
                        self.l2_then_mem(line, kind)
                    }
                }
            }
        };
        (lvl, self.served_latency(lvl, true))
    }

    /// Software prefetch of the line containing `addr` into `target`. No-op
    /// unless the platform honours prefetch instructions (§IV-A).
    pub fn sw_prefetch(&mut self, addr: u64, target: PrefetchTarget) {
        if !self.cfg.sw_prefetch_effective {
            return;
        }
        let line = self.line_of(addr);
        match target {
            PrefetchTarget::L1 => {
                // Fill both levels, as PRFM PLDL1KEEP effectively does.
                if self.l2_prefetch(line) {
                    self.tap_prefetch(TapLevel::L2, line);
                }
                if self.l1.prefetch_line(line) {
                    self.tap_prefetch(TapLevel::L1, line);
                }
            }
            PrefetchTarget::L2 => {
                if self.l2_prefetch(line) {
                    self.tap_prefetch(TapLevel::L2, line);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(path: VpuPath, sw_pf: bool, hw_pf: bool) -> MemSystemConfig {
        MemSystemConfig {
            l1: CacheConfig { name: "L1D", bytes: 4096, line_bytes: 64, assoc: 4, hit_latency: 4 },
            l2: CacheConfig { name: "L2", bytes: 65536, line_bytes: 64, assoc: 8, hit_latency: 12 },
            mem_latency: 100,
            vpu_path: path,
            hw_prefetch: if hw_pf { Some(StridePrefetcherConfig::default()) } else { None },
            sw_prefetch_effective: sw_pf,
        }
    }

    #[test]
    fn scalar_miss_then_hit_latencies() {
        let mut ms = MemSystem::new(cfg(VpuPath::ThroughL1, false, false));
        let (lvl, lat) = ms.demand_scalar(0x1000, AccessKind::Read);
        assert_eq!(lvl, MemLevel::Dram);
        assert_eq!(lat, 4 + 12 + 100);
        let (lvl, lat) = ms.demand_scalar(0x1004, AccessKind::Read);
        assert_eq!(lvl, MemLevel::L1);
        assert_eq!(lat, 4);
    }

    #[test]
    fn decoupled_vector_bypasses_l1() {
        let mut ms = MemSystem::new(cfg(VpuPath::DecoupledL2 { vcache_bytes: 2048 }, false, false));
        let (lvl, _) = ms.demand_vector(0x2000, AccessKind::Read);
        assert_eq!(lvl, MemLevel::Dram);
        assert_eq!(ms.l1.stats.accesses, 0, "vector traffic must not touch L1");
        assert_eq!(ms.l2.stats.accesses, 1);
        // Re-access: served by the vector cache.
        let (lvl, lat) = ms.demand_vector(0x2000, AccessKind::Read);
        assert_eq!(lvl, MemLevel::VectorCache);
        assert_eq!(lat, 2);
    }

    #[test]
    fn through_l1_vector_uses_l1() {
        let mut ms = MemSystem::new(cfg(VpuPath::ThroughL1, false, false));
        ms.demand_vector(0x2000, AccessKind::Read);
        let (lvl, _) = ms.demand_vector(0x2000, AccessKind::Read);
        assert_eq!(lvl, MemLevel::L1);
        assert_eq!(ms.l1.stats.accesses, 2);
    }

    #[test]
    fn sw_prefetch_noop_when_not_supported() {
        let mut ms = MemSystem::new(cfg(VpuPath::ThroughL1, false, false));
        ms.sw_prefetch(0x3000, PrefetchTarget::L1);
        let (lvl, _) = ms.demand_scalar(0x3000, AccessKind::Read);
        assert_eq!(lvl, MemLevel::Dram, "prefetch must be dropped on this profile");
    }

    #[test]
    fn sw_prefetch_effective_installs_line() {
        let mut ms = MemSystem::new(cfg(VpuPath::ThroughL1, true, false));
        ms.sw_prefetch(0x3000, PrefetchTarget::L1);
        let (lvl, lat) = ms.demand_scalar(0x3000, AccessKind::Read);
        assert_eq!(lvl, MemLevel::L1);
        assert_eq!(lat, 4);
        ms.sw_prefetch(0x9000, PrefetchTarget::L2);
        let (lvl, _) = ms.demand_scalar(0x9000, AccessKind::Read);
        assert_eq!(lvl, MemLevel::L2);
    }

    #[test]
    fn hw_prefetcher_turns_stream_into_hits() {
        let mut with_pf = MemSystem::new(cfg(VpuPath::ThroughL1, false, true));
        let mut without = MemSystem::new(cfg(VpuPath::ThroughL1, false, false));
        for k in 0..64u64 {
            with_pf.demand_scalar(0x10_0000 + k * 64, AccessKind::Read);
            without.demand_scalar(0x10_0000 + k * 64, AccessKind::Read);
        }
        assert!(
            with_pf.l1.stats.misses < without.l1.stats.misses,
            "prefetcher should remove stream misses: {} vs {}",
            with_pf.l1.stats.misses,
            without.l1.stats.misses
        );
    }

    #[test]
    fn dirty_l1_eviction_writes_back_to_l2() {
        let mut ms = MemSystem::new(cfg(VpuPath::ThroughL1, false, false));
        // L1: 4KB, 4-way, 64B lines -> 16 sets. Write line 0, then evict it
        // by touching 4 more lines in the same set (stride = sets*line = 1KB).
        ms.demand_scalar(0, AccessKind::Write);
        for k in 1..=4u64 {
            ms.demand_scalar(k * 1024, AccessKind::Read);
        }
        assert_eq!(ms.l1.stats.writebacks, 1);
    }

    #[test]
    fn stats_reset_preserves_contents() {
        let mut ms = MemSystem::new(cfg(VpuPath::ThroughL1, false, false));
        ms.demand_scalar(0x4000, AccessKind::Read);
        ms.reset_stats();
        assert_eq!(ms.l1.stats.accesses, 0);
        let (lvl, _) = ms.demand_scalar(0x4000, AccessKind::Read);
        assert_eq!(lvl, MemLevel::L1, "contents must survive a stats reset");
    }

    /// A sink that tallies per-level accesses and re-checks the `hit` flag
    /// against an independent fully-associative replay where possible.
    #[derive(Debug, Default)]
    struct CountingSink {
        l1: u64,
        vc: u64,
        l2: u64,
        l2_hits: u64,
        dram_r: u64,
        dram_w: u64,
        scopes: u64,
    }

    impl AccessSink for CountingSink {
        fn access(&mut self, level: TapLevel, _line: u64, _kind: AccessKind, hit: bool) {
            match level {
                TapLevel::L1 => self.l1 += 1,
                TapLevel::VectorCache => self.vc += 1,
                TapLevel::L2 => {
                    self.l2 += 1;
                    self.l2_hits += u64::from(hit);
                }
            }
        }
        fn dram_transfer(&mut self, kind: AccessKind) {
            match kind {
                AccessKind::Read => self.dram_r += 1,
                AccessKind::Write => self.dram_w += 1,
            }
        }
        fn scope(&mut self, _scope: TapScope<'_>) {
            self.scopes += 1;
        }
    }

    /// The tap must observe exactly the filtered stream each level sees
    /// (counters agree with the caches), and observing must not change any
    /// latency or statistic.
    #[test]
    fn tap_sees_filtered_streams_and_is_timing_neutral() {
        let run = |tap: bool| -> (MemSystemStats, Vec<u32>) {
            let mut ms =
                MemSystem::new(cfg(VpuPath::DecoupledL2 { vcache_bytes: 2048 }, false, false));
            if tap {
                ms.set_tap(Box::new(CountingSink::default()));
            }
            let mut lats = Vec::new();
            for i in 0..400u64 {
                // A mix of streaming reads, re-references, and dirty evictions.
                let (_, lat) = ms.demand_vector((i % 96) * 64, AccessKind::Read);
                lats.push(lat);
                let (_, lat) = ms.demand_scalar(0x10_0000 + (i % 33) * 64, AccessKind::Write);
                lats.push(lat);
            }
            ms.tap_scope(TapScope::LayerEnd);
            (ms.stats(), lats)
        };
        let (s_off, lat_off) = run(false);
        let (s_on, lat_on) = run(true);
        assert_eq!(lat_off, lat_on, "tap must be timing-neutral");
        assert_eq!(s_off.l2.accesses, s_on.l2.accesses);
        assert_eq!(s_on.l1.accesses, 400, "one scalar access per iteration");
        assert_eq!(s_on.vcache.accesses, 400, "one vector access per iteration");
        // L2 demand stream = L1 misses + vcache misses + dirty writebacks;
        // this filtering is what makes the stream independent of L2 size.
        assert_eq!(
            s_on.l2.accesses,
            s_on.l1.misses + s_on.vcache.misses + s_on.l1.writebacks + s_on.vcache.writebacks
        );
    }

    /// The same, but checking the sink's own counters (white-box): requires
    /// a handle into the sink, so use a shared cell.
    #[test]
    fn tap_counts_match_cache_counters() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Debug)]
        struct Shared(Rc<RefCell<CountingSink>>);
        impl AccessSink for Shared {
            fn access(&mut self, level: TapLevel, line: u64, kind: AccessKind, hit: bool) {
                self.0.borrow_mut().access(level, line, kind, hit);
            }
            fn dram_transfer(&mut self, kind: AccessKind) {
                self.0.borrow_mut().dram_transfer(kind);
            }
            fn scope(&mut self, scope: TapScope<'_>) {
                self.0.borrow_mut().scope(scope);
            }
        }

        let counts = Rc::new(RefCell::new(CountingSink::default()));
        let mut ms = MemSystem::new(cfg(VpuPath::DecoupledL2 { vcache_bytes: 2048 }, false, false));
        ms.set_tap(Box::new(Shared(counts.clone())));
        for i in 0..300u64 {
            ms.demand_vector((i % 80) * 64, AccessKind::Read);
            ms.demand_scalar(0x20_0000 + (i % 17) * 64, AccessKind::Write);
        }
        ms.tap_scope(TapScope::LayerBegin { index: 0, desc: "l" });
        ms.tap_scope(TapScope::LayerEnd);
        let st = ms.stats();
        let c = counts.borrow();
        assert_eq!(c.l1, st.l1.accesses);
        assert_eq!(c.vc, st.vcache.accesses);
        assert_eq!(c.l2, st.l2.accesses);
        assert_eq!(c.l2_hits, st.l2.hits);
        // DRAM transfers fire exactly once per counted read and writeback —
        // the 1:1 contract streamed energy attribution relies on.
        assert_eq!(c.dram_r, st.dram_reads);
        assert_eq!(c.dram_w, st.dram_writes);
        assert!(c.dram_r > 0, "workload must reach DRAM for the check to bite");
        assert_eq!(c.scopes, 2);
        assert!(ms.has_tap());
        ms.take_tap();
        assert!(!ms.has_tap());
    }

    /// The idealization knobs clamp latency only: serving levels, cache
    /// state, and every counter evolve exactly as in the factual system.
    #[test]
    fn ideal_knobs_are_timing_only() {
        use crate::ideal::IdealSpec;
        let run = |spec: IdealSpec| {
            let mut ms =
                MemSystem::new(cfg(VpuPath::DecoupledL2 { vcache_bytes: 2048 }, false, false));
            ms.set_ideal(spec);
            let mut lats = Vec::new();
            let mut lvls = Vec::new();
            for i in 0..300u64 {
                let (lvl, lat) = ms.demand_vector((i % 96) * 64, AccessKind::Read);
                lvls.push(lvl);
                lats.push(lat);
                let (lvl, lat) = ms.demand_scalar(0x10_0000 + (i % 40) * 64, AccessKind::Write);
                lvls.push(lvl);
                lats.push(lat);
            }
            (ms.stats(), lvls, lats)
        };
        let (s_base, lvl_base, lat_base) = run(IdealSpec::NONE);
        for spec in [
            IdealSpec { perfect_l1: true, ..IdealSpec::NONE },
            IdealSpec { perfect_l2: true, ..IdealSpec::NONE },
            IdealSpec { perfect_l1: true, perfect_l2: true, ..IdealSpec::NONE },
        ] {
            let (s, lvl, lat) = run(spec);
            assert_eq!(s, s_base, "{spec:?}: counters must be untouched");
            assert_eq!(lvl, lvl_base, "{spec:?}: serving levels must be untouched");
            for (ideal, factual) in lat.iter().zip(&lat_base) {
                assert!(ideal <= factual, "{spec:?}: latency may only shrink");
            }
            if spec.perfect_l1 {
                // Every access costs exactly its first level's hit latency.
                assert!(lat.iter().all(|&l| l == 2 || l == 4), "{spec:?}: {lat:?}");
            }
        }
    }

    /// A single core behind the shared port must see exactly the serving
    /// levels and latencies a private L2 gives — the MemSystem half of the
    /// N=1 bit-identity contract (`lva-scale` pins the full-machine half).
    #[test]
    fn shared_port_single_core_matches_private_l2() {
        use crate::shared::{SharedPort, SharedPortConfig};
        let c = cfg(VpuPath::DecoupledL2 { vcache_bytes: 2048 }, false, false);
        let mut private = MemSystem::new(c.clone());
        let mut attached = MemSystem::new(c.clone());
        let port = SharedPort::new(SharedPortConfig::for_line_bytes(1, c.l2.clone())).into_handle();
        attached.attach_shared_port(port.clone(), 0);
        assert!(attached.has_shared_port());
        let mut t = 0u64;
        for i in 0..500u64 {
            attached.set_port_now(t);
            t += 3;
            let a = private.demand_vector((i % 96) * 64, AccessKind::Read);
            let b = attached.demand_vector((i % 96) * 64, AccessKind::Read);
            assert_eq!(a, b, "serving level and latency must match at access {i}");
            let a = private.demand_scalar(0x10_0000 + (i % 33) * 64, AccessKind::Write);
            let b = attached.demand_scalar(0x10_0000 + (i % 33) * 64, AccessKind::Write);
            assert_eq!(a, b);
        }
        assert_eq!(attached.take_contention(), 0, "one core must never be charged contention");
        let sp = private.stats();
        let sa = attached.stats();
        // Shared-L2 counters live on the port; everything else is per-core.
        assert_eq!(sp.l1, sa.l1);
        assert_eq!(sp.vcache, sa.vcache);
        assert_eq!(sp.dram_reads, sa.dram_reads);
        assert_eq!(sp.dram_writes, sa.dram_writes);
        assert_eq!(sa.l2, CacheStats::default(), "private L2 array must sit cold");
        assert_eq!(port.borrow().stats().l2, sp.l2, "port carries the L2 stats");
    }

    #[test]
    #[should_panic(expected = "mixed line sizes")]
    fn mixed_line_sizes_rejected() {
        let mut c = cfg(VpuPath::ThroughL1, false, false);
        c.l2.line_bytes = 128;
        c.l2.bytes = 65536;
        let _ = MemSystem::new(c);
    }
}
