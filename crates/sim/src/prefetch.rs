//! Hardware stride prefetcher, modelled after the A64FX L1/L2 stream
//! prefetch engines (sequential/stride detection, configurable degree).
//!
//! The simulated RISC-V Vector and SVE@gem5 platforms run with hardware
//! prefetching disabled, as in Table I of the paper; the A64FX-like profile
//! enables it.

/// Where a prefetch (software or hardware) installs its line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchTarget {
    L1,
    L2,
}

/// Configuration of the stride prefetcher.
#[derive(Debug, Clone, Copy)]
pub struct StridePrefetcherConfig {
    /// Number of independent streams tracked.
    pub streams: usize,
    /// Lines fetched ahead once a stream is confirmed.
    pub degree: usize,
    /// Consecutive stride matches required before issuing prefetches.
    pub confidence: u32,
}

impl Default for StridePrefetcherConfig {
    fn default() -> Self {
        StridePrefetcherConfig { streams: 8, degree: 4, confidence: 2 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    last_line: u64,
    stride: i64,
    hits: u32,
    valid: bool,
    /// Round-robin age for replacement.
    age: u64,
}

/// Detects strided line-address streams and emits prefetch candidates.
///
/// The prefetcher observes *demand* line addresses via [`Self::observe`] and
/// returns the list of line addresses to install. The caller (the memory
/// system) decides which cache level receives them.
#[derive(Debug)]
pub struct StridePrefetcher {
    cfg: StridePrefetcherConfig,
    streams: Vec<Stream>,
    tick: u64,
    pub issued: u64,
    /// Index of the stream the last observation touched. Valid streams have
    /// pairwise-distinct `last_line` (the same-line check runs before any
    /// stream moves, so no second stream is ever steered onto an occupied
    /// line), which makes checking this one slot first an exact shortcut
    /// for the same-line scan — the common case inside a cache line.
    last_touched: usize,
}

impl StridePrefetcher {
    pub fn new(cfg: StridePrefetcherConfig) -> Self {
        assert!(cfg.streams > 0 && cfg.degree > 0);
        StridePrefetcher {
            streams: vec![
                Stream { last_line: 0, stride: 0, hits: 0, valid: false, age: 0 };
                cfg.streams
            ],
            cfg,
            tick: 0,
            issued: 0,
            last_touched: 0,
        }
    }

    /// Feed one demand line address; collect prefetch candidate lines into
    /// `out` (cleared first).
    ///
    /// Streams are associated by *proximity*: an access within
    /// `ASSOC_WINDOW` lines of a stream's last position continues that
    /// stream, so several interleaved sequential streams (e.g. the packed A
    /// and B panels plus the C rows of a GEMM micro-kernel) are tracked
    /// simultaneously. Repeated accesses to a stream's current line are
    /// ignored (they carry no direction information and must not evict
    /// live streams). Only short strides (<= `MAX_PREFETCH_STRIDE` lines)
    /// are prefetched: a column-major walk with a row-length stride — like
    /// the unpacked B panel of the 3-loop GEMM — defeats the unit, which is
    /// exactly why the paper's 6-loop packing matters on A64FX (§VI-C).
    pub fn observe(&mut self, line: u64, out: &mut Vec<u64>) {
        const ASSOC_WINDOW: u64 = 16;
        const MAX_PREFETCH_STRIDE: i64 = 4;
        out.clear();
        self.tick += 1;
        // Same-line repeat: refresh recency, learn nothing. The stream we
        // touched last answers almost every repeat (consecutive words of one
        // cache line), so probe that single slot before scanning.
        let lt = &mut self.streams[self.last_touched];
        if lt.valid && lt.last_line == line {
            lt.age = self.tick;
            return;
        }
        // One pass finds both the same-line stream (distance 0 — valid
        // streams have pairwise-distinct `last_line`, so it is unique) and
        // the nearest stream within the association window. First-of-equals
        // wins, as in a two-pass scan.
        let mut best: Option<(usize, u64)> = None;
        for (i, s) in self.streams.iter_mut().enumerate() {
            if !s.valid {
                continue;
            }
            let dist = line.abs_diff(s.last_line);
            if dist == 0 {
                s.age = self.tick;
                self.last_touched = i;
                return;
            }
            if dist <= ASSOC_WINDOW && best.is_none_or(|(_, d)| dist < d) {
                best = Some((i, dist));
            }
        }
        match best {
            Some((i, _)) => {
                self.last_touched = i;
                let s = &mut self.streams[i];
                let delta = line as i64 - s.last_line as i64;
                if delta == s.stride {
                    s.hits += 1;
                } else {
                    s.stride = delta;
                    s.hits = 1;
                }
                s.last_line = line;
                s.age = self.tick;
                if s.hits >= self.cfg.confidence
                    && s.stride.unsigned_abs() <= MAX_PREFETCH_STRIDE as u64
                {
                    let stride = s.stride;
                    for k in 1..=self.cfg.degree as i64 {
                        let target = line as i64 + stride * k;
                        if target >= 0 {
                            out.push(target as u64);
                        }
                    }
                    self.issued += out.len() as u64;
                }
            }
            None => {
                // Allocate (replace the oldest stream).
                let idx = self
                    .streams
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| if s.valid { s.age } else { 0 })
                    .map(|(i, _)| i)
                    .unwrap();
                self.streams[idx] =
                    Stream { last_line: line, stride: 0, hits: 0, valid: true, age: self.tick };
                self.last_touched = idx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_triggers_prefetch() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
        let mut out = Vec::new();
        for line in 100..110u64 {
            p.observe(line, &mut out);
        }
        // After confidence is established, next-lines are predicted.
        assert!(!out.is_empty());
        assert_eq!(out[0], 110);
        assert!(p.issued > 0);
    }

    #[test]
    fn strided_stream_detected() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
        let mut out = Vec::new();
        for k in 0..10u64 {
            p.observe(1000 + 3 * k, &mut out);
        }
        assert!(out.contains(&(1000 + 3 * 10)));
    }

    #[test]
    fn random_accesses_do_not_trigger() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
        let mut out = Vec::new();
        let mut total = 0;
        let mut x = 12345u64;
        for _ in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.observe((x >> 20) & 0x0FFF_FFFF, &mut out);
            total += out.len();
        }
        // Random walk should essentially never confirm a stream.
        assert!(total < 20, "spurious prefetches: {total}");
    }

    #[test]
    fn multiple_interleaved_streams() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
        let mut out = Vec::new();
        let mut fired = [false, false];
        for k in 0..20u64 {
            p.observe(1_000 + k, &mut out);
            if out.contains(&(1_000 + k + 1)) {
                fired[0] = true;
            }
            p.observe(900_000 + 2 * k, &mut out);
            if out.contains(&(900_000 + 2 * k + 2)) {
                fired[1] = true;
            }
        }
        assert!(fired[0] && fired[1], "both streams should be tracked: {fired:?}");
    }
}
