//! Cache latency models.
//!
//! The paper derives its L2 latency from the AMD Zen2 L2 (12 cycles at 7 nm)
//! extrapolated with CACTI to 1 MB, and then — crucially for its conclusions —
//! holds the latency *constant* while sweeping the L2 capacity from 1 MB to
//! 256 MB ("larger caches are beneficial, **given that their latency remains
//! low**"). We reproduce both options: the paper's constant-latency sweep and
//! a CACTI-flavoured scaled model for the ablation benches.

/// How L2 hit latency responds to capacity in a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// The paper's assumption: latency pinned to the 1 MB anchor (12 cycles).
    Constant,
    /// CACTI-flavoured growth: latency scales with the square root of
    /// capacity (wire delay dominated), anchored at 12 cycles @ 1 MB.
    Scaled,
}

/// Anchor point from the paper: 12 cycles for a 1 MB L2.
pub const L2_ANCHOR_BYTES: usize = 1 << 20;
pub const L2_ANCHOR_CYCLES: u32 = 12;

/// L2 hit latency in cycles for a given capacity under a [`LatencyModel`].
///
/// `Scaled` follows a sqrt law: a 256 MB cache (256x capacity) costs 16x the
/// anchor latency (192 cycles), which is the right order of magnitude for a
/// monolithic SRAM array per CACTI 6.0.
pub fn l2_latency_cycles(bytes: usize, model: LatencyModel) -> u32 {
    match model {
        LatencyModel::Constant => L2_ANCHOR_CYCLES,
        LatencyModel::Scaled => {
            let ratio = bytes as f64 / L2_ANCHOR_BYTES as f64;
            let lat = L2_ANCHOR_CYCLES as f64 * ratio.max(1.0).sqrt();
            lat.round().max(L2_ANCHOR_CYCLES as f64) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_anchor_everywhere() {
        for mb in [1usize, 8, 64, 256] {
            assert_eq!(l2_latency_cycles(mb << 20, LatencyModel::Constant), 12);
        }
    }

    #[test]
    fn scaled_is_monotone_and_anchored() {
        assert_eq!(l2_latency_cycles(1 << 20, LatencyModel::Scaled), 12);
        let mut last = 0;
        for mb in [1usize, 4, 16, 64, 256] {
            let l = l2_latency_cycles(mb << 20, LatencyModel::Scaled);
            assert!(l >= last);
            last = l;
        }
        assert_eq!(l2_latency_cycles(256 << 20, LatencyModel::Scaled), 192);
    }

    #[test]
    fn scaled_never_below_anchor() {
        assert_eq!(l2_latency_cycles(64 << 10, LatencyModel::Scaled), 12);
    }
}
