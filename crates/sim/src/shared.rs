//! Shared L2/DRAM port for multi-core SoC simulation (`lva-scale`).
//!
//! The paper sweeps a single scalar+VPU core; real deployments integrate
//! several vector cores behind one L2 and one DRAM channel. This module
//! models that integration point: one [`SharedPort`] owns the L2 cache and
//! the DRAM interface, every attached core's `MemSystem` routes its
//! would-be-private-L2 traffic here, and transactions arbitrate for port
//! bandwidth.
//!
//! ## Arbitration model (instruction-granular, cross-core only)
//!
//! Each transaction carries the requesting core's current front-end cycle
//! `now` (published by the SoC event loop before every replayed
//! instruction). The port keeps a per-core `busy_until` horizon:
//!
//! * **grant** = `max(now, max over *other* cores' busy_until)` — a request
//!   waits behind every other core's in-flight transfer, never behind its
//!   own (a core's own transfer serialization is already modelled by the
//!   per-instruction occupancy arithmetic in `lva-isa`).
//! * **wait** = `grant − now` is charged to the requesting core's
//!   `Contention` stall cause.
//! * `busy_until[core] = max(busy_until[core], grant) + service`, so a
//!   core's back-to-back line transfers occupy the port cumulatively from
//!   every *other* core's point of view.
//!
//! With one core there is no "other core": `wait` is identically zero and
//! every cache lookup happens in the same order as on a private L2, which
//! is what makes the N=1 SoC run bit-identical to the single-core
//! simulator (pinned by test in `lva-scale`).
//!
//! The event-loop scheduling (lowest local clock first, lowest core index
//! on ties — a round-robin order whenever cores are in lockstep) plus this
//! integer arbitration makes the whole SoC simulation deterministic:
//! byte-identical output under any `--jobs`.

use std::cell::RefCell;
use std::rc::Rc;

use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats, Lookup};

/// One arbitrated transaction on the shared port, as seen by an observer.
#[derive(Debug, Clone, Copy)]
pub struct PortEvent {
    /// Requesting core index.
    pub core: usize,
    /// Line index (address / line size) of the transaction.
    pub line: u64,
    pub kind: AccessKind,
    /// Whether the shared L2 served it (miss ⇒ DRAM fill).
    pub hit: bool,
    /// Requesting core's front-end cycle when the request was issued.
    pub at: u64,
    /// Cycles the request waited behind other cores' transfers.
    pub wait: u64,
    /// Port service (transfer) cycles claimed by this transaction.
    pub service: u64,
    /// Number of *other* cores with an in-flight transfer at issue time.
    pub queue_depth: u32,
}

/// Observer of the merged cross-core shared-L2 stream. Installed by
/// `lva-scale` to feed the Mattson reuse-distance profiler (merged-stream
/// hit-rate curve) and the bandwidth / queue-depth counter tracks of the
/// multi-pid Chrome timeline. Pure observation: timing and cache state are
/// bit-identical with or without an observer.
pub trait PortObserver {
    fn transaction(&mut self, ev: &PortEvent);
}

impl std::fmt::Debug for dyn PortObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn PortObserver")
    }
}

/// Static configuration of the shared port.
#[derive(Debug, Clone)]
pub struct SharedPortConfig {
    /// Number of attached cores.
    pub n_cores: usize,
    /// Geometry/latency of the shared L2 (same shape the private L2 would
    /// have; hit latency is still applied per-core by `served_latency`).
    pub l2: CacheConfig,
    /// Port service cycles per L2 transaction (one line over the core↔L2
    /// interconnect).
    pub l2_port_cycles: u64,
    /// Additional service cycles per line crossing the DRAM interface
    /// (L2 miss fill; doubled again for a dirty-victim writeback).
    pub dram_port_cycles: u64,
    /// Counterfactual knob (`lva-whatif`): arbitration waits forced to
    /// zero, i.e. an infinitely-banked port. Cache *state* still evolves —
    /// but note the knob is scenario-level, not timing-only: removing waits
    /// changes core clocks, hence the cross-core interleaving of the merged
    /// stream.
    pub infinite_bw: bool,
}

impl SharedPortConfig {
    /// Default port service costs for a given line size: one line per
    /// `l2_port_cycles` over a 32 B/cycle core↔L2 interconnect, and a
    /// 4× slower DRAM interface behind it.
    pub fn for_line_bytes(n_cores: usize, l2: CacheConfig) -> Self {
        let l2_port_cycles = (l2.line_bytes as u64).div_ceil(32).max(1);
        SharedPortConfig {
            n_cores,
            l2,
            l2_port_cycles,
            dram_port_cycles: l2_port_cycles * 4,
            infinite_bw: false,
        }
    }
}

/// Per-core and aggregate counters of the shared port.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedPortStats {
    /// Shared-L2 counters over the merged stream.
    pub l2: CacheStats,
    /// Arbitration wait cycles charged per core.
    pub waits: Vec<u64>,
    /// Transactions issued per core.
    pub transactions: Vec<u64>,
    /// Port service cycles claimed per core (bandwidth share).
    pub service_cycles: Vec<u64>,
}

/// The shared L2 + DRAM port. See module docs.
#[derive(Debug)]
pub struct SharedPort {
    cfg: SharedPortConfig,
    pub l2: Cache,
    busy_until: Vec<u64>,
    waits: Vec<u64>,
    transactions: Vec<u64>,
    service_cycles: Vec<u64>,
    observer: Option<Box<dyn PortObserver>>,
}

/// Shared handle type used by `MemSystem` attachments and the SoC loop.
/// `Rc<RefCell<…>>` (not `Arc<Mutex<…>>`) is deliberate: the SoC event loop
/// is single-threaded by design — determinism comes from the loop order,
/// not from locking.
pub type SharedPortHandle = Rc<RefCell<SharedPort>>;

impl SharedPort {
    pub fn new(cfg: SharedPortConfig) -> Self {
        assert!(cfg.n_cores >= 1, "shared port needs at least one core");
        let n = cfg.n_cores;
        SharedPort {
            l2: Cache::new(cfg.l2.clone()),
            busy_until: vec![0; n],
            waits: vec![0; n],
            transactions: vec![0; n],
            service_cycles: vec![0; n],
            observer: None,
            cfg,
        }
    }

    /// Wrap in the shared handle the SoC loop and `MemSystem` attachments use.
    pub fn into_handle(self) -> SharedPortHandle {
        Rc::new(RefCell::new(self))
    }

    pub fn config(&self) -> &SharedPortConfig {
        &self.cfg
    }

    /// Install a merged-stream observer (replacing any previous one).
    pub fn set_observer(&mut self, obs: Box<dyn PortObserver>) {
        self.observer = Some(obs);
    }

    /// Remove and return the installed observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn PortObserver>> {
        self.observer.take()
    }

    /// Arbitrate one transaction issued by `core` at its local cycle `now`
    /// for `service` port cycles; returns (wait, queue depth at issue).
    fn arbitrate(&mut self, core: usize, now: u64, service: u64) -> (u64, u32) {
        self.transactions[core] += 1;
        self.service_cycles[core] += service;
        if self.cfg.infinite_bw {
            return (0, 0);
        }
        let mut others = 0u64;
        let mut depth = 0u32;
        for (c, &b) in self.busy_until.iter().enumerate() {
            if c != core {
                others = others.max(b);
                depth += u32::from(b > now);
            }
        }
        let grant = now.max(others);
        let wait = grant - now;
        self.waits[core] += wait;
        self.busy_until[core] = self.busy_until[core].max(grant) + service;
        (wait, depth)
    }

    /// One demand transaction on the shared L2 from `core` at local cycle
    /// `now`. Performs exactly the lookup a private L2 would (same
    /// [`Cache`] model, same stats), charges port service — one line over
    /// the L2 interconnect, plus the DRAM interface crossings on a miss —
    /// and returns the lookup outcome with the cross-core wait.
    pub fn l2_access(
        &mut self,
        core: usize,
        line: u64,
        kind: AccessKind,
        now: u64,
    ) -> (Lookup, u64) {
        let r = self.l2.access_line(line, kind);
        let mut service = self.cfg.l2_port_cycles;
        if let Lookup::Miss { victim_dirty } = r {
            service += self.cfg.dram_port_cycles;
            if victim_dirty {
                service += self.cfg.dram_port_cycles;
            }
        }
        let (wait, queue_depth) = self.arbitrate(core, now, service);
        if let Some(obs) = self.observer.as_mut() {
            obs.transaction(&PortEvent {
                core,
                line,
                kind,
                hit: matches!(r, Lookup::Hit),
                at: now,
                wait,
                service,
                queue_depth,
            });
        }
        (r, wait)
    }

    /// Prefetcher install into the shared L2. Prefetches ride spare
    /// bandwidth: they mutate cache state exactly like a private-L2 install
    /// but claim no port time and charge no wait.
    pub fn prefetch_line(&mut self, line: u64) -> bool {
        self.l2.prefetch_line(line)
    }

    /// Measurement barrier: zero the arbitration horizons and every
    /// statistic while preserving cache contents — the multi-core analogue
    /// of `MemSystem::reset_stats` after the setup phase the paper excludes
    /// from measurement.
    pub fn reset_stats(&mut self) {
        self.busy_until.fill(0);
        self.waits.fill(0);
        self.transactions.fill(0);
        self.service_cycles.fill(0);
        self.l2.reset_stats();
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> SharedPortStats {
        SharedPortStats {
            l2: self.l2.stats,
            waits: self.waits.clone(),
            transactions: self.transactions.clone(),
            service_cycles: self.service_cycles.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(n: usize) -> SharedPort {
        SharedPort::new(SharedPortConfig {
            n_cores: n,
            l2: CacheConfig { name: "L2", bytes: 65536, line_bytes: 64, assoc: 8, hit_latency: 12 },
            l2_port_cycles: 2,
            dram_port_cycles: 8,
            infinite_bw: false,
        })
    }

    #[test]
    fn single_core_never_waits() {
        let mut p = port(1);
        for i in 0..200u64 {
            let (_, wait) = p.l2_access(0, i % 37, AccessKind::Read, i * 3);
            assert_eq!(wait, 0, "one core must never wait on the shared port");
        }
        assert_eq!(p.stats().waits, vec![0]);
        assert_eq!(p.stats().transactions, vec![200]);
    }

    #[test]
    fn cross_core_requests_wait_and_are_charged() {
        let mut p = port(2);
        // Core 0 claims the port at t=0 (miss: 2 + 8 service cycles).
        let (r, w) = p.l2_access(0, 1, AccessKind::Read, 0);
        assert!(matches!(r, Lookup::Miss { .. }));
        assert_eq!(w, 0);
        // Core 1 arrives at t=3 while core 0's transfer is in flight.
        let (_, w) = p.l2_access(1, 1, AccessKind::Read, 3);
        assert_eq!(w, 10 - 3, "must wait out the remainder of core 0's transfer");
        let st = p.stats();
        assert_eq!(st.waits, vec![0, 7]);
        // Sum of waits is exactly what the observer saw / cores were charged.
        assert_eq!(st.l2.accesses, 2);
        assert_eq!(st.l2.hits, 1, "core 1 hits the line core 0 just filled");
    }

    #[test]
    fn own_transfers_never_self_contend() {
        let mut p = port(2);
        // A burst of 10 transactions from core 0 at the same local cycle:
        // each claims service but none waits behind its own predecessors.
        for i in 0..10u64 {
            let (_, w) = p.l2_access(0, 1000 + i * 64, AccessKind::Read, 5);
            assert_eq!(w, 0);
        }
        // Core 1 now sees the accumulated horizon of all ten transfers.
        let (_, w) = p.l2_access(1, 1, AccessKind::Read, 5);
        assert_eq!(w, 10 * 10, "other core waits behind the full burst");
    }

    #[test]
    fn infinite_bw_kills_waits_but_not_state() {
        let mut inf = port(2);
        inf.cfg.infinite_bw = true;
        let mut fin = port(2);
        for i in 0..100u64 {
            let (r_i, w_i) = inf.l2_access((i % 2) as usize, i % 23, AccessKind::Read, 0);
            let (r_f, _) = fin.l2_access((i % 2) as usize, i % 23, AccessKind::Read, 0);
            assert_eq!(w_i, 0);
            assert_eq!(r_i, r_f, "same issue order must give identical lookups");
        }
        assert_eq!(inf.stats().l2, fin.stats().l2);
        assert!(fin.stats().waits.iter().sum::<u64>() > 0);
        assert_eq!(inf.stats().waits.iter().sum::<u64>(), 0);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut p = port(2);
        p.l2_access(0, 7, AccessKind::Write, 0);
        p.l2_access(1, 7, AccessKind::Read, 0);
        p.reset_stats();
        let st = p.stats();
        assert_eq!(st.l2.accesses, 0);
        assert_eq!(st.waits, vec![0, 0]);
        let (r, _) = p.l2_access(1, 7, AccessKind::Read, 0);
        assert_eq!(r, Lookup::Hit, "contents must survive the barrier reset");
    }

    #[derive(Debug, Default)]
    struct Tally {
        events: u64,
        waits: u64,
    }
    impl PortObserver for Tally {
        fn transaction(&mut self, ev: &PortEvent) {
            self.events += 1;
            self.waits += ev.wait;
        }
    }

    #[test]
    fn observer_sees_every_transaction_and_is_timing_neutral() {
        let run = |observe: bool| -> (SharedPortStats, Vec<u64>) {
            let mut p = port(3);
            if observe {
                p.set_observer(Box::new(Tally::default()));
            }
            let mut waits = Vec::new();
            for i in 0..300u64 {
                let core = (i % 3) as usize;
                let (_, w) = p.l2_access(core, (i * 7) % 41, AccessKind::Read, i);
                waits.push(w);
            }
            (p.stats(), waits)
        };
        let (s_off, w_off) = run(false);
        let (s_on, w_on) = run(true);
        assert_eq!(w_off, w_on, "observer must be timing-neutral");
        assert_eq!(s_off, s_on);
    }
}
