//! Address-stream tap: an opt-in observer of per-level cache traffic.
//!
//! The co-design questions of the paper (§V–§VI) are all working-set-vs-
//! capacity questions — does the K×VL B-panel fit in L2, does a weight row
//! fit in the vector cache — and answering them from aggregate hit rates
//! alone requires re-running the sweep at every candidate size. A tap on the
//! per-level address streams lets one run feed a Mattson reuse-distance
//! profiler (`lva-prof`), which predicts the hit rate at *every* capacity
//! from a single address stream.
//!
//! Design constraints, mirroring the event recorder in `lva-isa`:
//!
//! * **Free when absent.** The tap is an `Option`; every call site pays one
//!   branch when no sink is installed.
//! * **Pure observation.** The sink sees each access *after* the cache has
//!   classified it; it can never change latencies or cache state. Cycle
//!   counts are bit-identical with the tap on or off (asserted in
//!   `lva-prof`'s tests).
//! * **Filtered streams.** Each level's stream is the traffic that level
//!   actually sees: the L2 stream consists of L1/vector-cache misses plus
//!   dirty writebacks, which makes it independent of the L2's own size —
//!   the property that makes single-run capacity prediction sound.

use crate::cache::AccessKind;

/// Which cache level an observed access targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapLevel {
    L1,
    VectorCache,
    L2,
}

impl TapLevel {
    pub fn name(self) -> &'static str {
        match self {
            TapLevel::L1 => "l1d",
            TapLevel::VectorCache => "vcache",
            TapLevel::L2 => "l2",
        }
    }
}

/// Scope markers forwarded through the tap so a profiler can attribute
/// accesses to layers and kernel phases without depending on `lva-nn` or
/// `lva-isa`. Begin/end pairs nest (a phase runs inside a layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapScope<'a> {
    /// A network layer starts (`index`, short description).
    LayerBegin {
        index: usize,
        desc: &'a str,
    },
    LayerEnd,
    /// A kernel phase (§II-B breakdown) starts.
    PhaseBegin {
        name: &'static str,
    },
    PhaseEnd,
}

/// Observer of the per-level demand-access streams.
///
/// `hit` reports the *simulated* outcome (set-associative, after prefetch
/// fills), so an implementation can validate capacity predictions against
/// the real cache on the same stream.
pub trait AccessSink {
    /// One demand access at `level`, line-granular, in program order.
    fn access(&mut self, level: TapLevel, line: u64, kind: AccessKind, hit: bool);

    /// A prefetcher installed `line` at `level` without a demand access.
    /// Default: ignored.
    fn prefetch_fill(&mut self, level: TapLevel, line: u64) {
        let _ = (level, line);
    }

    /// One line crossed the DRAM interface: a fetch on an L2 miss
    /// (`AccessKind::Read`) or a dirty-victim writeback
    /// (`AccessKind::Write`). Fires exactly once per counted
    /// `dram_reads`/`dram_writes` transfer, which is what makes streamed
    /// energy attribution reconcile with the aggregate counters.
    /// Default: ignored.
    fn dram_transfer(&mut self, kind: AccessKind) {
        let _ = kind;
    }

    /// A layer/phase boundary. Default: ignored.
    fn scope(&mut self, scope: TapScope<'_>) {
        let _ = scope;
    }
}

impl std::fmt::Debug for dyn AccessSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn AccessSink")
    }
}
