//! # lva-sim — memory-system substrate for the long-vector co-design study
//!
//! This crate is the reproduction's substitute for the gem5 memory system
//! used in *"Accelerating CNN inference on long vector architectures via
//! co-design"* (IPDPS 2023). It provides:
//!
//! * [`Memory`] — a simulated flat memory arena holding `f32` words. Kernels
//!   allocate [`Buf`] handles from it; the handles carry byte addresses so the
//!   cache model observes a realistic address stream while the functional
//!   simulation reads and writes real floating-point data.
//! * [`Cache`] — a set-associative, true-LRU, write-allocate/write-back cache
//!   with hit/miss/writeback statistics.
//! * [`MemSystem`] — a two-level hierarchy (L1D + L2 + DRAM latency) with the
//!   two vector-unit integration styles studied in the paper:
//!   [`VpuPath::ThroughL1`] (ARM-SVE: vector accesses go through the L1) and
//!   [`VpuPath::DecoupledL2`] (RISC-V Vector: the VPU reads/writes L2 through
//!   a small 2 KB vector cache, bypassing the L1).
//! * Software-prefetch handling (no-op on platforms that drop the
//!   instructions, effective on the A64FX-like profile) and an optional
//!   hardware stride prefetcher (A64FX).
//! * A CACTI-flavoured [`latency`] helper that extrapolates L2 access latency
//!   from the paper's 12-cycles-at-1-MB Zen2 anchor point.
//!
//! Everything here is deterministic: the same kernel run produces the same
//! statistics, so experiments need no repetition/averaging.

#![forbid(unsafe_code)]
pub mod cache;
pub mod ideal;
pub mod latency;
pub mod mem;
pub mod memsys;
pub mod prefetch;
pub mod rng;
pub mod shared;
pub mod tap;

pub use cache::{AccessKind, Cache, CacheConfig, CacheStats, Miss3C};
pub use ideal::{IdealKnob, IdealSpec};
pub use latency::{l2_latency_cycles, LatencyModel};
pub use mem::{AllocRecord, Buf, Memory};
pub use memsys::{
    MemLevel, MemSystem, MemSystemConfig, MemSystemStats, VpuPath, VCACHE_HIT_LATENCY,
};
pub use prefetch::{PrefetchTarget, StridePrefetcher, StridePrefetcherConfig};
pub use rng::Rng;
pub use shared::{
    PortEvent, PortObserver, SharedPort, SharedPortConfig, SharedPortHandle, SharedPortStats,
};
pub use tap::{AccessSink, TapLevel, TapScope};
