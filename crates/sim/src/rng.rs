//! A small deterministic PRNG (SplitMix64) used everywhere the workspace
//! needs reproducible pseudo-random data: tensor initialisation, test-input
//! generation, and the randomized property tests. Keeping it in-tree keeps
//! the workspace dependency-free and makes every experiment bit-for-bit
//! reproducible from a seed.

/// SplitMix64: tiny, fast, passes BigCrush, and — unlike a bare LCG — has no
/// weak low bits. Perfectly adequate as a data/test generator (it is *not* a
/// cryptographic RNG).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits of mantissa.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[-1, 1)` — the tensor-initialisation convention.
    pub fn next_f32_signed(&mut self) -> f32 {
        (self.next_f64() * 2.0 - 1.0) as f32
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        // Multiply-shift range reduction; bias is < 2^-64 per draw, far
        // below anything these tests can observe.
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn gen_index(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as u64, hi as u64) as usize
    }

    /// Coin flip with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(0, i + 1);
            xs.swap(i, j);
        }
    }

    /// `n` uniform `f32` samples in `[-1, 1)`.
    pub fn f32_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.next_f32_signed()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::new(43).next_u64();
        assert_ne!(a[0], c, "different seeds diverge");
    }

    #[test]
    fn float_ranges() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f32_signed();
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut r = Rng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws cover all 10 buckets");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(9);
        let mut xs: Vec<u32> = (0..64).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(xs, (0..64).collect::<Vec<u32>>(), "64 elements virtually never fixed");
    }
}
