//! Property test: the production cache model must agree, access for
//! access, with an independently-written reference LRU implementation
//! (per-set move-to-front lists). Any divergence in hit/miss classification
//! or writeback generation is a bug in one of them.

use lva_sim::{AccessKind, Cache, CacheConfig, Rng};

/// Straight-line reference: per-set Vec with move-to-front order.
struct RefLru {
    sets: usize,
    assoc: usize,
    /// Per set: (tag, dirty), most recent first.
    lines: Vec<Vec<(u64, bool)>>,
}

impl RefLru {
    fn new(sets: usize, assoc: usize) -> Self {
        RefLru { sets, assoc, lines: vec![Vec::new(); sets] }
    }

    /// Returns (hit, victim_was_dirty).
    fn access(&mut self, line: u64, write: bool) -> (bool, bool) {
        let set = (line as usize) % self.sets;
        let tag = line / self.sets as u64;
        let entries = &mut self.lines[set];
        if let Some(pos) = entries.iter().position(|&(t, _)| t == tag) {
            let (t, mut d) = entries.remove(pos);
            d |= write;
            entries.insert(0, (t, d));
            (true, false)
        } else {
            let mut victim_dirty = false;
            if entries.len() == self.assoc {
                victim_dirty = entries.pop().expect("full set").1;
            }
            entries.insert(0, (tag, write));
            (false, victim_dirty)
        }
    }
}

#[test]
fn cache_matches_reference_lru() {
    let mut rng = Rng::new(0x16c);
    for _ in 0..64 {
        let sets_pow = rng.gen_range(0, 5) as u32;
        let assoc = rng.gen_index(1, 9);
        let trace: Vec<(u64, bool)> = (0..rng.gen_index(1, 600))
            .map(|_| (rng.gen_range(0, 200), rng.gen_bool(0.5)))
            .collect();
        let sets = 1usize << sets_pow;
        let line_bytes = 64usize;
        let mut cache = Cache::new(CacheConfig {
            name: "T",
            bytes: sets * assoc * line_bytes,
            line_bytes,
            assoc,
            hit_latency: 1,
        });
        let mut reference = RefLru::new(sets, assoc);
        let mut hits = 0u64;
        let mut wbs = 0u64;
        for &(line, write) in &trace {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let (ref_hit, ref_wb) = reference.access(line, write);
            match cache.access_line(line, kind) {
                lva_sim::cache::Lookup::Hit => {
                    hits += 1;
                    assert!(ref_hit, "model hit, reference missed on line {line}");
                }
                lva_sim::cache::Lookup::Miss { victim_dirty } => {
                    assert!(!ref_hit, "model missed, reference hit on line {line}");
                    assert_eq!(victim_dirty, ref_wb, "writeback mismatch on line {line}");
                    if victim_dirty {
                        wbs += 1;
                    }
                }
            }
        }
        assert_eq!(cache.stats.hits, hits);
        assert_eq!(cache.stats.writebacks, wbs);
        assert_eq!(cache.stats.accesses, trace.len() as u64);
    }
}

/// Inclusion property of LRU: on any trace, a fully-associative LRU
/// cache with more capacity never misses more.
#[test]
fn fully_assoc_capacity_monotone() {
    let mut rng = Rng::new(0xfa);
    for _ in 0..64 {
        let trace: Vec<u64> = (0..rng.gen_index(1, 400)).map(|_| rng.gen_range(0, 64)).collect();
        let mut prev = u64::MAX;
        for lines in [2usize, 4, 8, 16, 64] {
            let mut c = Cache::new(CacheConfig {
                name: "FA",
                bytes: lines * 64,
                line_bytes: 64,
                assoc: lines,
                hit_latency: 1,
            });
            for &l in &trace {
                c.access_line(l, AccessKind::Read);
            }
            assert!(c.stats.misses <= prev);
            prev = c.stats.misses;
        }
    }
}

/// Prefetched lines must never change hit/miss *correctness*, only
/// timing: demanding a prefetched line is a hit, and flushing restores
/// cold behaviour.
#[test]
fn prefetch_then_demand_is_hit() {
    let mut rng = Rng::new(0x9f);
    for _ in 0..64 {
        let lines: Vec<u64> = (0..rng.gen_index(1, 64)).map(|_| rng.gen_range(0, 128)).collect();
        let mut c = Cache::new(CacheConfig {
            name: "P",
            bytes: 128 * 64,
            line_bytes: 64,
            assoc: 128,
            hit_latency: 1,
        });
        for &l in &lines {
            c.prefetch_line(l);
        }
        for &l in &lines {
            let hit = matches!(c.access_line(l, AccessKind::Read), lva_sim::cache::Lookup::Hit);
            assert!(hit);
        }
        c.flush();
        let miss = matches!(
            c.access_line(lines[0], AccessKind::Read),
            lva_sim::cache::Lookup::Miss { .. }
        );
        assert!(miss);
    }
}
