//! Chrome trace-event (`about:tracing` / Perfetto) timeline builder.
//!
//! A [`ChromeTrace`] collects duration events on named *tracks* and
//! serializes them to the Trace Event Format's JSON object form
//! (`{"traceEvents": [...]}`), loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Each track becomes one thread row (constant
//! `pid`, one `tid` per track, named via `thread_name` metadata events), so
//! pipeline resources — kernel phases, each stall cause, layers — render as
//! parallel swim lanes over the simulated-cycle axis.
//!
//! Timestamps here are **simulated cycles**, not microseconds; Chrome only
//! assumes a uniform unit, so durations and overlaps render correctly (the
//! time axis reads "µs" but means cycles — noted in `otherData`).
//!
//! The builder supports both event styles:
//! * `complete(track, name, ts, dur)` → one `X` event (used for stall
//!   intervals, which never nest);
//! * `begin`/`end` pairs → `B`/`E` events (used for phases and layers,
//!   which nest).
//!
//! [`ChromeTrace::validate`] checks the well-formedness rules Chrome
//! enforces only by rendering garbage — per-track monotone non-decreasing
//! timestamps and balanced `B`/`E` pairs — so tests can gate on them.

use crate::json::Json;

/// One timeline event on a track.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Complete { name: String, ts: u64, dur: u64 },
    Begin { name: String, ts: u64 },
    End { ts: u64 },
    Counter { name: String, ts: u64, value: f64 },
}

impl Ev {
    fn ts(&self) -> u64 {
        match self {
            Ev::Complete { ts, .. }
            | Ev::Begin { ts, .. }
            | Ev::End { ts }
            | Ev::Counter { ts, .. } => *ts,
        }
    }
}

/// Named event tracks in creation order.
type Tracks = Vec<(String, Vec<Ev>)>;

/// A growable timeline: tracks in creation order, events per track in
/// append order.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    tracks: Tracks,
    /// Free-form metadata surfaced in the file's `otherData` object.
    meta: Vec<(String, String)>,
    /// Sub-process timelines merged via [`ChromeTrace::merge_process`]
    /// (multi-core SoC exports: one pid per core). The root's own tracks
    /// stay on pid 1.
    procs: Vec<(u64, String, Tracks)>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a key/value note to the file's `otherData` section.
    pub fn note(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    fn track_mut(&mut self, track: &str) -> &mut Vec<Ev> {
        if let Some(i) = self.tracks.iter().position(|(n, _)| n == track) {
            &mut self.tracks[i].1
        } else {
            self.tracks.push((track.to_string(), Vec::new()));
            &mut self.tracks.last_mut().expect("just pushed").1
        }
    }

    /// Append a complete (`X`) event: `[ts, ts+dur)` on `track`.
    pub fn complete(&mut self, track: &str, name: &str, ts: u64, dur: u64) {
        self.track_mut(track).push(Ev::Complete { name: name.to_string(), ts, dur });
    }

    /// Open a nested (`B`) event on `track`.
    pub fn begin(&mut self, track: &str, name: &str, ts: u64) {
        self.track_mut(track).push(Ev::Begin { name: name.to_string(), ts });
    }

    /// Close (`E`) the innermost open event on `track`.
    pub fn end(&mut self, track: &str, ts: u64) {
        self.track_mut(track).push(Ev::End { ts });
    }

    /// Append a counter (`C`) sample: series `name` on `track` has `value`
    /// from `ts` on. Chrome/Perfetto render counter tracks as step charts
    /// (queue depths, batch sizes, occupancy) — one `args` entry per
    /// series, so several series on one track stack.
    pub fn counter(&mut self, track: &str, name: &str, ts: u64, value: f64) {
        self.track_mut(track).push(Ev::Counter { name: name.to_string(), ts, value });
    }

    /// Absorb `sub` as a separate trace-viewer *process* row: its tracks
    /// render under their own pid with `name` as the process label, so a
    /// multi-core SoC export shows one collapsible group per core plus the
    /// root's shared-resource tracks (pid 1). `pid` must be ≥ 2 (1 is the
    /// root) and unique among merged processes; `sub`'s metadata notes are
    /// carried over with a `{name}.` key prefix. Nested sub-processes of
    /// `sub` itself are not supported (one level of grouping).
    ///
    /// # Panics
    /// Panics on a reserved/duplicate `pid` or if `sub` has sub-processes.
    pub fn merge_process(&mut self, pid: u64, name: &str, sub: ChromeTrace) {
        assert!(pid >= 2, "pid 1 is the root process");
        assert!(self.procs.iter().all(|(p, ..)| *p != pid), "duplicate process pid {pid}");
        assert!(sub.procs.is_empty(), "merge_process: sub-trace already has processes");
        for (k, v) in sub.meta {
            self.meta.push((format!("{name}.{k}"), v));
        }
        self.procs.push((pid, name.to_string(), sub.tracks));
    }

    /// Number of events across all tracks (root and merged processes).
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|(_, evs)| evs.len()).sum::<usize>()
            + self.procs.iter().flat_map(|(_, _, ts)| ts).map(|(_, evs)| evs.len()).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check the invariants a renderable trace needs:
    /// * per track, timestamps are monotone non-decreasing in append order
    ///   (for `X` events the *start*; Chrome sorts stably by `ts`);
    /// * per track, `B`/`E` events balance: never an `E` without an open
    ///   `B`, none left open at the end, and each `E` at or after its `B`.
    ///
    /// Returns the first violation as `Err(description)`. Tracks of merged
    /// sub-processes are checked under the same rules.
    pub fn validate(&self) -> Result<(), String> {
        Self::validate_tracks(&self.tracks)?;
        for (_, name, tracks) in &self.procs {
            Self::validate_tracks(tracks).map_err(|e| format!("process {name:?}: {e}"))?;
        }
        Ok(())
    }

    fn validate_tracks(tracks: &[(String, Vec<Ev>)]) -> Result<(), String> {
        for (track, evs) in tracks {
            let mut last_ts = 0u64;
            let mut open: Vec<(&str, u64)> = Vec::new();
            for (i, ev) in evs.iter().enumerate() {
                if ev.ts() < last_ts {
                    return Err(format!(
                        "track {track:?} event {i}: ts {} < previous ts {last_ts} (not monotone)",
                        ev.ts()
                    ));
                }
                last_ts = ev.ts();
                match ev {
                    Ev::Begin { name, ts } => open.push((name, *ts)),
                    Ev::End { ts } => match open.pop() {
                        Some((name, b_ts)) if *ts >= b_ts => {
                            let _ = name;
                        }
                        Some((name, b_ts)) => {
                            return Err(format!(
                                "track {track:?} event {i}: E at {ts} before B {name:?} at {b_ts}"
                            ));
                        }
                        None => {
                            return Err(format!("track {track:?} event {i}: E without open B"));
                        }
                    },
                    Ev::Complete { .. } => {}
                    Ev::Counter { name, value, .. } => {
                        if !value.is_finite() {
                            return Err(format!(
                                "track {track:?} event {i}: counter {name:?} value {value} is not finite"
                            ));
                        }
                    }
                }
            }
            if let Some((name, ts)) = open.pop() {
                return Err(format!("track {track:?}: B {name:?} at {ts} never closed"));
            }
        }
        Ok(())
    }

    /// Serialize to the Trace Event Format JSON object form. Merged
    /// sub-processes emit under their own pid with a `process_name`
    /// metadata row; the root's tracks stay on pid 1 (gaining a
    /// `process_name` row only when sub-processes exist, so single-process
    /// exports are byte-stable).
    pub fn to_json(&self) -> Json {
        const PID: u64 = 1;
        let mut events: Vec<Json> = Vec::with_capacity(self.len() + self.tracks.len());
        if !self.procs.is_empty() {
            events.push(
                Json::obj()
                    .field("name", "process_name")
                    .field("ph", "M")
                    .field("pid", PID)
                    .field("args", Json::obj().field("name", "soc")),
            );
        }
        Self::emit_tracks(&mut events, PID, &self.tracks);
        for (pid, name, tracks) in &self.procs {
            events.push(
                Json::obj()
                    .field("name", "process_name")
                    .field("ph", "M")
                    .field("pid", *pid)
                    .field("args", Json::obj().field("name", name.as_str())),
            );
            Self::emit_tracks(&mut events, *pid, tracks);
        }
        let mut other = Json::obj().field("time_unit", "simulated cycles (rendered as us)");
        for (k, v) in &self.meta {
            other = other.field(k, v.as_str());
        }
        Json::obj().field("traceEvents", Json::Arr(events)).field("otherData", other)
    }

    fn emit_tracks(events: &mut Vec<Json>, pid: u64, tracks: &[(String, Vec<Ev>)]) {
        for (tid0, (track, evs)) in tracks.iter().enumerate() {
            let tid = tid0 as u64 + 1;
            // Name the thread row after the track.
            events.push(
                Json::obj()
                    .field("name", "thread_name")
                    .field("ph", "M")
                    .field("pid", pid)
                    .field("tid", tid)
                    .field("args", Json::obj().field("name", track.as_str())),
            );
            for ev in evs {
                let e = match ev {
                    Ev::Complete { name, ts, dur } => Json::obj()
                        .field("name", name.as_str())
                        .field("ph", "X")
                        .field("ts", *ts)
                        .field("dur", *dur)
                        .field("pid", pid)
                        .field("tid", tid),
                    Ev::Begin { name, ts } => Json::obj()
                        .field("name", name.as_str())
                        .field("ph", "B")
                        .field("ts", *ts)
                        .field("pid", pid)
                        .field("tid", tid),
                    Ev::End { ts } => Json::obj()
                        .field("ph", "E")
                        .field("ts", *ts)
                        .field("pid", pid)
                        .field("tid", tid),
                    Ev::Counter { name, ts, value } => Json::obj()
                        .field("name", name.as_str())
                        .field("ph", "C")
                        .field("ts", *ts)
                        .field("pid", pid)
                        .field("tid", tid)
                        .field("args", Json::obj().field(name.as_str(), *value)),
                };
                events.push(e);
            }
        }
    }

    /// Write pretty-printed JSON to `path` (e.g. `trace.json`).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut body = self.to_json().to_string_pretty();
        body.push('\n');
        std::fs::write(path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_trace_passes_and_serializes() {
        let mut t = ChromeTrace::new();
        t.begin("phase", "gemm", 0);
        t.begin("phase", "pack", 5); // nested
        t.end("phase", 9);
        t.end("phase", 20);
        t.complete("stall:mem", "mem", 3, 4);
        t.complete("stall:mem", "mem", 9, 2);
        t.note("hw", "RVV@gem5");
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.len(), 6);
        let j = t.to_json();
        let evs = j.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        // 6 events + 2 thread_name metadata records.
        assert_eq!(evs.len(), 8);
        // The metadata rows name the tracks.
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str).expect("name")
            })
            .collect();
        assert_eq!(names, vec!["phase", "stall:mem"]);
        // Round-trips through the parser.
        let text = j.to_string_pretty();
        assert_eq!(Json::parse(&text).expect("parses"), j);
    }

    #[test]
    fn monotonicity_violation_detected() {
        let mut t = ChromeTrace::new();
        t.complete("r", "a", 10, 5);
        t.complete("r", "b", 9, 1); // goes backwards
        let err = t.validate().unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
        // Independent tracks do not interfere.
        let mut t2 = ChromeTrace::new();
        t2.complete("r1", "a", 10, 5);
        t2.complete("r2", "b", 0, 1);
        assert_eq!(t2.validate(), Ok(()));
    }

    #[test]
    fn unbalanced_pairs_detected() {
        let mut t = ChromeTrace::new();
        t.begin("p", "x", 0);
        assert!(t.validate().unwrap_err().contains("never closed"));

        let mut t = ChromeTrace::new();
        t.end("p", 4);
        assert!(t.validate().unwrap_err().contains("E without open B"));
    }

    #[test]
    fn counter_events_serialize_as_ph_c_and_reject_non_finite() {
        let mut t = ChromeTrace::new();
        t.counter("queue", "depth", 0, 0.0);
        t.counter("queue", "depth", 10, 3.0);
        t.counter("queue", "depth", 25, 1.0);
        assert_eq!(t.validate(), Ok(()));
        let j = t.to_json();
        let evs = j.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        // 3 counter samples + 1 thread_name metadata record.
        assert_eq!(evs.len(), 4);
        let c = &evs[2]; // second sample
        assert_eq!(c.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(c.get("name").and_then(Json::as_str), Some("depth"));
        assert_eq!(c.get("args").and_then(|a| a.get("depth")).and_then(Json::as_f64), Some(3.0));
        // Counter samples interleave with duration events on other tracks.
        t.complete("exec", "batch", 5, 10);
        assert_eq!(t.validate(), Ok(()));
        // Non-finite values are rejected, not silently emitted.
        let mut bad = ChromeTrace::new();
        bad.counter("queue", "depth", 0, f64::NAN);
        assert!(bad.validate().unwrap_err().contains("not finite"));
    }

    #[test]
    fn merged_processes_emit_their_own_pid_and_are_validated() {
        let mut root = ChromeTrace::new();
        root.counter("shared port", "queue depth", 0, 2.0);
        let mut c0 = ChromeTrace::new();
        c0.begin("layer", "L0 conv", 0);
        c0.end("layer", 10);
        c0.note("core", "0");
        let mut c1 = ChromeTrace::new();
        c1.complete("stall:contention", "contention", 3, 4);
        root.merge_process(2, "core0", c0);
        root.merge_process(3, "core1", c1);
        assert_eq!(root.validate(), Ok(()));
        assert_eq!(root.len(), 4);
        let j = root.to_json();
        let evs = j.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        // Per-pid process_name rows (root + 2 cores) + 3 thread_name rows
        // + 4 events.
        assert_eq!(evs.len(), 10);
        let pids: std::collections::BTreeSet<u64> = evs
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_f64))
            .map(|p| p as u64)
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let proc_names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(proc_names, vec!["soc", "core0", "core1"]);
        // Sub-trace metadata is carried over, prefixed by the process name.
        let other = j.get("otherData").expect("otherData");
        assert_eq!(other.get("core0.core").and_then(Json::as_str), Some("0"));

        // Validation reaches into sub-processes.
        let mut bad = ChromeTrace::new();
        let mut sub = ChromeTrace::new();
        sub.begin("p", "x", 5);
        bad.merge_process(2, "broken", sub);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("broken") && err.contains("never closed"), "{err}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = ChromeTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.validate(), Ok(()));
        assert!(t.to_json().get("traceEvents").and_then(Json::as_arr).unwrap().is_empty());
    }
}
