//! A tiny hand-rolled JSON value type and serializer.
//!
//! The workspace is intentionally dependency-free, so instead of serde this
//! module provides the minimal subset the telemetry layer and the run
//! reports need: an order-preserving object, arrays, strings with correct
//! escaping, and integer/float formatting that round-trips through any
//! standards-compliant parser.

use std::fmt;

/// A JSON value. Objects preserve insertion order so reports render with a
/// stable, human-diffable key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (cycle counts, event tallies) keep full precision.
    UInt(u64),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object; chain [`Json::field`] to populate it.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair. Panics in debug builds if `self` is not an
    /// object (a construction bug, not a data condition).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => debug_assert!(false, "Json::field on non-object"),
        }
        self
    }

    /// Serialize into `out` (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*n, &mut buf));
            }
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh compact string.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::with_capacity(128);
        self.write(&mut s);
        s
    }

    /// Serialize with two-space indentation — the form written to report
    /// files so diffs between runs stay readable.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::with_capacity(256);
        self.write_pretty(&mut s, 0);
        s
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    it.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Format `n` without allocating; returns a slice of `buf`.
fn fmt_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).unwrap()
}

/// JSON has no NaN/Inf; map them to null so output always parses.
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` on f64 is Rust's shortest round-trip formatting, which is
        // also valid JSON for finite values.
        use fmt::Write;
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

/// Escape and quote `s` per RFC 8259: `"` and `\` escaped, control
/// characters as `\uXXXX` (with the common short forms for \n \r \t etc.).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::UInt(u64::MAX).to_string_compact(), u64::MAX.to_string());
        assert_eq!(Json::Int(-7).to_string_compact(), "-7");
        assert_eq!(Json::Num(1.5).to_string_compact(), "1.5");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let cases: &[(&str, &str)] = &[
            ("plain", "\"plain\""),
            ("with \"quotes\"", "\"with \\\"quotes\\\"\""),
            ("back\\slash", "\"back\\\\slash\""),
            ("line\nbreak\ttab", "\"line\\nbreak\\ttab\""),
            ("bell\u{07}", "\"bell\\u0007\""),
            ("unicode: λ→∞", "\"unicode: λ→∞\""),
        ];
        for (input, want) in cases {
            assert_eq!(&Json::Str(input.to_string()).to_string_compact(), want);
        }
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let j = Json::obj()
            .field("b", 1u64)
            .field("a", Json::Arr(vec![Json::from("x"), Json::Null]))
            .field("c", Json::obj().field("k", 2.5));
        assert_eq!(j.to_string_compact(), r#"{"b":1,"a":["x",null],"c":{"k":2.5}}"#);
    }

    #[test]
    fn pretty_output_parses_same_as_compact() {
        let j = Json::obj()
            .field("name", "exp")
            .field("vals", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        let pretty = j.to_string_pretty();
        assert!(pretty.contains('\n'));
        // Stripping all insignificant whitespace must yield the compact form.
        let squashed: String = pretty.chars().filter(|c| !c.is_ascii_whitespace()).collect();
        let compact: String =
            j.to_string_compact().chars().filter(|c| !c.is_ascii_whitespace()).collect();
        assert_eq!(squashed, compact);
    }
}
