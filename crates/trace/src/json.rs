//! A tiny hand-rolled JSON value type and serializer.
//!
//! The workspace is intentionally dependency-free, so instead of serde this
//! module provides the minimal subset the telemetry layer and the run
//! reports need: an order-preserving object, arrays, strings with correct
//! escaping, and integer/float formatting that round-trips through any
//! standards-compliant parser.

use std::fmt;

/// A JSON value. Objects preserve insertion order so reports render with a
/// stable, human-diffable key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (cycle counts, event tallies) keep full precision.
    UInt(u64),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object; chain [`Json::field`] to populate it.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair. Panics in debug builds if `self` is not an
    /// object (a construction bug, not a data condition).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => debug_assert!(false, "Json::field on non-object"),
        }
        self
    }

    /// Serialize into `out` (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*n, &mut buf));
            }
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh compact string.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::with_capacity(128);
        self.write(&mut s);
        s
    }

    /// Serialize with two-space indentation — the form written to report
    /// files so diffs between runs stay readable.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::with_capacity(256);
        self.write_pretty(&mut s, 0);
        s
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    it.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Format `n` without allocating; returns a slice of `buf`.
fn fmt_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).unwrap()
}

/// JSON has no NaN/Inf; map them to null so output always parses.
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` on f64 is Rust's shortest round-trip formatting, which is
        // also valid JSON for finite values.
        use fmt::Write;
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

/// Escape and quote `s` per RFC 8259: `"` and `\` escaped, control
/// characters as `\uXXXX` (with the common short forms for \n \r \t etc.).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Parsing (for `bench-diff` and other report consumers)
// ----------------------------------------------------------------------

/// A parse failure: byte offset + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting guard: reports written by this workspace are a few levels deep;
/// anything past this is corrupt input, not a report.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => self.err(format!("unexpected byte 0x{b:02x}")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => break,
                _ => return self.err("expected ',' or ']'"),
            }
        }
        self.depth -= 1;
        Ok(Json::Arr(items))
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => break,
                _ => return self.err("expected ',' or '}'"),
            }
        }
        self.depth -= 1;
        Ok(Json::Obj(pairs))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(chunk) => s.push_str(chunk),
                    Err(_) => return self.err("invalid UTF-8 in string"),
                }
            }
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired surrogate");
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return self.err("invalid low surrogate");
                            }
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        match char::from_u32(cp) {
                            Some(c) => s.push(c),
                            None => return self.err("invalid unicode escape"),
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(_) => return self.err("unescaped control character in string"),
                None => return self.err("unterminated string"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return self.err("expected 4 hex digits"),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return self.err("expected digit");
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let fs = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == fs {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let es = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == es {
                return self.err("expected exponent digits");
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            // Preserve integer-ness where it fits (cycle counts exceed 2^53).
            if neg {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Num(x)),
            Err(_) => self.err("malformed number"),
        }
    }
}

impl Json {
    /// Parse a complete JSON document (the inverse of the serializer;
    /// round-trips everything this workspace writes). Trailing whitespace is
    /// allowed, trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after value");
        }
        Ok(v)
    }

    /// Object field lookup (first match; objects this crate writes have
    /// unique keys). `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup. `None` on non-arrays / out of range.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// Numeric value as `f64` (UInt/Int/Num). `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned integer value (exact). `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean value. `None` otherwise.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value. `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items. `None` otherwise.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::UInt(u64::MAX).to_string_compact(), u64::MAX.to_string());
        assert_eq!(Json::Int(-7).to_string_compact(), "-7");
        assert_eq!(Json::Num(1.5).to_string_compact(), "1.5");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let cases: &[(&str, &str)] = &[
            ("plain", "\"plain\""),
            ("with \"quotes\"", "\"with \\\"quotes\\\"\""),
            ("back\\slash", "\"back\\\\slash\""),
            ("line\nbreak\ttab", "\"line\\nbreak\\ttab\""),
            ("bell\u{07}", "\"bell\\u0007\""),
            ("unicode: λ→∞", "\"unicode: λ→∞\""),
        ];
        for (input, want) in cases {
            assert_eq!(&Json::Str(input.to_string()).to_string_compact(), want);
        }
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let j = Json::obj()
            .field("b", 1u64)
            .field("a", Json::Arr(vec![Json::from("x"), Json::Null]))
            .field("c", Json::obj().field("k", 2.5));
        assert_eq!(j.to_string_compact(), r#"{"b":1,"a":["x",null],"c":{"k":2.5}}"#);
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let j = Json::obj()
            .field("name", "exp \"quoted\" \\ λ→∞\n")
            .field("cycles", u64::MAX)
            .field("delta", -42i64)
            .field("rate", 0.12345678901234567)
            .field("flag", true)
            .field("none", Json::Null)
            .field(
                "layers",
                Json::Arr(vec![
                    Json::obj().field("i", 0u64).field("c", 123u64),
                    Json::obj().field("i", 1u64).field("c", 456u64),
                ]),
            );
        for text in [j.to_string_compact(), j.to_string_pretty()] {
            let parsed = Json::parse(&text).expect("round trip");
            assert_eq!(parsed, j, "parse(serialize(x)) == x for {text}");
        }
    }

    #[test]
    fn parse_scalars_and_numbers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse("-9007199254740993").unwrap(), Json::Int(-9007199254740993));
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Num(1500.0));
        assert_eq!(Json::parse("0.25").unwrap(), Json::Num(0.25));
        // Integer too large for u64 degrades to f64 rather than failing.
        assert!(matches!(Json::parse("98446744073709551615").unwrap(), Json::Num(_)));
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""a\nb\t\"\\\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("a\nb\t\"\\é😀".to_string()));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1}x",
            "[1 2]",
            "nan",
            "--1",
            "\"\\u12\"",
            "01x",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_reports() {
        let j =
            Json::parse(r#"{"totals":{"cycles":77},"layers":[{"desc":"conv"},{"desc":"pool"}]}"#)
                .unwrap();
        assert_eq!(j.get("totals").and_then(|t| t.get("cycles")).and_then(Json::as_u64), Some(77));
        assert_eq!(
            j.get("layers")
                .and_then(|l| l.at(1))
                .and_then(|l| l.get("desc"))
                .and_then(Json::as_str),
            Some("pool")
        );
        assert_eq!(j.get("layers").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.at(0), None);
        assert_eq!(Json::UInt(7).as_f64(), Some(7.0));
        assert_eq!(Json::Int(-7).as_u64(), None);
    }

    #[test]
    fn pretty_output_parses_same_as_compact() {
        let j = Json::obj()
            .field("name", "exp")
            .field("vals", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        let pretty = j.to_string_pretty();
        assert!(pretty.contains('\n'));
        // Stripping all insignificant whitespace must yield the compact form.
        let squashed: String = pretty.chars().filter(|c| !c.is_ascii_whitespace()).collect();
        let compact: String =
            j.to_string_compact().chars().filter(|c| !c.is_ascii_whitespace()).collect();
        assert_eq!(squashed, compact);
    }
}
