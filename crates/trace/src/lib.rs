//! `lva-trace` — a zero-dependency telemetry facade for the simulator stack.
//!
//! Design goals, in order:
//!
//! 1. **Free when off.** Tracing is globally disabled by default; every
//!    entry point first reads one relaxed [`AtomicBool`] and returns. The
//!    cycle-approximate timing model must be bit-identical with tracing on
//!    or off — this crate only *observes*, it never advances the clock.
//! 2. **Hierarchical spans.** `network → layer → kernel-phase` nesting is
//!    tracked per thread; each span gets a process-unique id and records its
//!    parent so the JSONL stream can be re-assembled into a tree.
//! 3. **Machine-readable.** Events are emitted as JSON Lines — one compact
//!    object per line — to whatever sink was installed (a file, stderr, or
//!    an in-memory buffer for tests).
//!
//! ## Event shapes
//!
//! ```text
//! {"ev":"span","id":7,"parent":3,"name":"layer","us":123,"fields":{...}}
//! {"ev":"counter","name":"l1_misses","value":4096,"span":7}
//! {"ev":"event","name":"...","fields":{...},"span":7}
//! ```
//!
//! `us` is the span's wall-clock duration in microseconds (host time, for
//! profiling the simulator itself); simulated time belongs in `fields`.

#![forbid(unsafe_code)]
use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod chrome;
pub mod json;
pub use chrome::ChromeTrace;
pub use json::Json;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

enum Sink {
    File(BufWriter<File>),
    Stderr,
    Memory(Vec<String>),
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// When `Some`, this thread's emitted lines are diverted here instead of
    /// the global sink — see [`capture_thread`]. Worker threads of a parallel
    /// sweep capture locally and the coordinator replays buffers in
    /// submission order, so the merged stream is deterministic.
    static THREAD_BUF: RefCell<Option<Vec<String>>> = const { RefCell::new(None) };
}

/// Is tracing globally enabled? Inlined single atomic load — the fast path
/// every instrumentation site checks first.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Route events to a JSONL file (created/truncated), then enable tracing.
pub fn enable_to_file(path: impl AsRef<Path>) -> io::Result<()> {
    let f = File::create(path)?;
    *SINK.lock().unwrap() = Some(Sink::File(BufWriter::new(f)));
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Route events to stderr, then enable tracing.
pub fn enable_to_stderr() {
    *SINK.lock().unwrap() = Some(Sink::Stderr);
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Route events to an in-memory buffer (drain with [`take_memory`]).
/// Used by tests; also handy for embedding.
pub fn enable_to_memory() {
    *SINK.lock().unwrap() = Some(Sink::Memory(Vec::new()));
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disable tracing and drop the sink (flushing file sinks).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    if let Some(Sink::File(mut w)) = SINK.lock().unwrap().take() {
        let _ = w.flush();
    }
}

/// Flush a file sink without disabling.
pub fn flush() {
    if let Some(Sink::File(w)) = SINK.lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

/// Drain the in-memory sink's lines. Empty unless [`enable_to_memory`] is
/// the active sink.
pub fn take_memory() -> Vec<String> {
    match SINK.lock().unwrap().as_mut() {
        Some(Sink::Memory(lines)) => std::mem::take(lines),
        _ => Vec::new(),
    }
}

fn emit_line(line: String) {
    // Divert to the thread-local capture buffer if one is active. This
    // branch only runs when tracing is enabled, so the disabled fast path
    // (one relaxed atomic load) is untouched.
    let line = match THREAD_BUF.with(|b| match b.borrow_mut().as_mut() {
        Some(buf) => {
            buf.push(line);
            None
        }
        None => Some(line),
    }) {
        Some(l) => l,
        None => return,
    };
    let mut guard = SINK.lock().unwrap();
    match guard.as_mut() {
        Some(Sink::File(w)) => {
            let _ = writeln!(w, "{line}");
        }
        Some(Sink::Stderr) => eprintln!("{line}"),
        Some(Sink::Memory(lines)) => lines.push(line),
        None => {}
    }
}

/// Run `f` with this thread's trace output captured into a buffer instead of
/// the global sink, returning `f`'s result and the captured JSONL lines.
///
/// Captures nest (the previous buffer, if any, is restored on exit — also on
/// panic, via a drop guard; the partial capture is discarded in that case).
/// Span ids stay process-unique across threads, so replaying buffers with
/// [`emit_captured`] yields a stream whose parent links are still valid.
pub fn capture_thread<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    struct Restore {
        prev: Option<Vec<String>>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_BUF.with(|b| *b.borrow_mut() = self.prev.take());
        }
    }
    let prev = THREAD_BUF.with(|b| b.borrow_mut().replace(Vec::new()));
    let restore = Restore { prev };
    let r = f();
    let lines = THREAD_BUF.with(|b| b.borrow_mut().take()).unwrap_or_default();
    drop(restore);
    (r, lines)
}

/// Replay lines captured by [`capture_thread`] into the active sink (or the
/// caller's own capture buffer, when nested), preserving order.
pub fn emit_captured(lines: Vec<String>) {
    for line in lines {
        emit_line(line);
    }
}

fn current_parent() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII guard for a span. Created by [`span`]; emits a single JSONL record
/// when dropped (so a span's fields can accumulate while it runs).
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    start_us: u64,
    fields: Vec<(String, Json)>,
    live: bool,
}

/// Open a span. When tracing is disabled this is two loads and returns an
/// inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0, name, start_us: 0, fields: Vec::new(), live: false };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        id,
        name,
        start_us: epoch().elapsed().as_micros() as u64,
        fields: Vec::new(),
        live: true,
    }
}

impl SpanGuard {
    /// Attach a field to be emitted when the span closes. No-op when inert.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        if self.live {
            self.fields.push((key.to_string(), value.into()));
        }
    }

    /// The span's process-unique id (0 when tracing is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let parent = SPAN_STACK.with(|s| {
            let mut st = s.borrow_mut();
            // Pop our own id; whatever remains on top is the parent.
            if let Some(pos) = st.iter().rposition(|&x| x == self.id) {
                st.remove(pos);
            }
            st.last().copied().unwrap_or(0)
        });
        let us = epoch().elapsed().as_micros() as u64 - self.start_us;
        let mut j = Json::obj()
            .field("ev", "span")
            .field("id", self.id)
            .field("parent", parent)
            .field("name", self.name)
            .field("us", us);
        if !self.fields.is_empty() {
            j = j.field("fields", Json::Obj(std::mem::take(&mut self.fields)));
        }
        emit_line(j.to_string_compact());
    }
}

/// Emit a named counter sample, attributed to the innermost open span.
#[inline]
pub fn counter(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let j = Json::obj()
        .field("ev", "counter")
        .field("name", name)
        .field("value", value)
        .field("span", current_parent());
    emit_line(j.to_string_compact());
}

/// Emit a one-shot structured event, attributed to the innermost open span.
pub fn event(name: &str, fields: Json) {
    if !enabled() {
        return;
    }
    let j = Json::obj()
        .field("ev", "event")
        .field("name", name)
        .field("fields", fields)
        .field("span", current_parent());
    emit_line(j.to_string_compact());
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink and the ENABLED flag are process-global, so the tests that
    // exercise them share one #[test] to avoid cross-test interference
    // under the default parallel test runner.
    #[test]
    fn spans_counters_and_noop_path() {
        // Disabled: everything is inert and nothing is buffered.
        assert!(!enabled());
        {
            let mut s = span("dead");
            s.set("k", 1u64);
            counter("dead_counter", 5);
        }
        assert!(take_memory().is_empty());

        // Enabled to memory: nesting and attribution are recorded.
        enable_to_memory();
        {
            let mut outer = span("network");
            outer.set("layers", 3u64);
            {
                let mut inner = span("layer");
                inner.set("cycles", 123u64);
                counter("flops", 42);
            }
        }
        let lines = take_memory();
        disable();
        // Note sink order: inner span closes (and is emitted) first.
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""ev":"counter""#) && lines[0].contains(r#""value":42"#));
        assert!(lines[1].contains(r#""name":"layer""#));
        assert!(lines[2].contains(r#""name":"network""#) && lines[2].contains(r#""parent":0"#));
        // The inner span's parent is the outer span's id.
        let outer_id = lines[2]
            .split(r#""id":"#)
            .nth(1)
            .and_then(|s| s.split(',').next())
            .unwrap()
            .to_string();
        assert!(lines[1].contains(&format!(r#""parent":{outer_id}"#)));
        // The counter is attributed to the inner span.
        let inner_id = lines[1]
            .split(r#""id":"#)
            .nth(1)
            .and_then(|s| s.split(',').next())
            .unwrap()
            .to_string();
        assert!(lines[0].contains(&format!(r#""span":{inner_id}"#)));

        // Every line is an object: starts with '{', ends with '}'.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }

        // Thread-local capture: lines are diverted, the sink sees nothing
        // until they are replayed, and nested captures restore the outer one.
        enable_to_memory();
        let ((), captured) = capture_thread(|| {
            let _s = span("captured_span");
            counter("captured_counter", 7);
            let ((), inner) = capture_thread(|| counter("nested", 1));
            assert_eq!(inner.len(), 1);
            emit_captured(inner); // lands in the *outer* capture buffer
        });
        assert!(take_memory().is_empty(), "capture must divert from the sink");
        assert_eq!(captured.len(), 3);
        assert!(captured[0].contains("captured_counter"));
        assert!(captured[1].contains("nested"));
        assert!(captured[2].contains("captured_span"));
        emit_captured(captured);
        let replayed = take_memory();
        assert_eq!(replayed.len(), 3, "replay goes to the sink once capture ends");
        disable();
        // After capture + disable, emission is a no-op again.
        counter("post", 1);
        assert!(take_memory().is_empty());
    }
}
