//! Dataflow lint passes over one recorded stream.
//!
//! Both passes are consequences of the dependence analysis the DAG makes
//! explicit, phrased as actionable findings:
//!
//! * **redundant-load** — a unit-stride `vle` whose exact byte range is
//!   already live in a vector register (loaded earlier, not overwritten in
//!   memory since, register not redefined since). The reload costs bus
//!   occupancy and result latency for data the register file already holds;
//!   the fix is a `vmv` or direct reuse. Provenance is tracked only for
//!   exact-range unit-stride loads and propagated through `vmv`, so a
//!   finding is a certainty, not a heuristic.
//! * **dead-store** — a unit-stride store whose every byte is overwritten
//!   by later unit-stride stores before any load reads it. Stores still
//!   live at the end of the stream are *not* flagged (outputs escape the
//!   recorded window), and only `vse` events participate: a strided or
//!   scattered store's `[lo, hi)` span over-approximates the bytes it
//!   actually writes, so treating it as a killer (or a candidate) would
//!   fabricate findings. Sparse stores instead *keep alive* every store
//!   they overlap.
//!
//! Known blind spot, by contract: the event IR records vector operations
//! only, so data consumed through `Machine::scalar_read` (the A-operand
//! path of the packed GEMM micro-kernels) is invisible — a store feeding
//! scalar reads looks unread. Such findings are allowlisted with that
//! reason rather than suppressed, so the report still shows them.
//!
//! Real findings on registry kernels either get fixed or are explicitly
//! allowlisted in [`ALLOWLIST`] with a reason; `lint-dataflow` gates CI on
//! anything new.

use std::collections::BTreeMap;

use lva_check::Finding;
use lva_isa::{EventKind, VecEvent, NUM_VREGS};
use lva_sim::AllocRecord;

use crate::certify::label_of;

/// Findings accepted as intentional, with the reviewed reason. Consulted by
/// `lint-dataflow` before gating: an allowlisted finding is reported but
/// does not fail the run.
pub const ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "aux_ops",
        "redundant-load",
        "copy_vec hands the freshly copied chunk to add_inplace_vec, which reloads it; \
         the registry case chains them deliberately to keep the stale-copy sanitizer \
         pass exercised on a live pattern",
    ),
    (
        "fc_softmax",
        "redundant-load",
        "fully_connected_vec reloads the x operand chunk for every output row; hoisting \
         it needs row-blocked accumulators (a real co-design opportunity the lint is \
         meant to surface), tracked rather than gated",
    ),
    (
        "gemm_opt6",
        "dead-store",
        "the packed-A panel is consumed through Machine::scalar_read (the scalar \
         A-operand broadcast path of Fig. 3), which the vector event IR does not \
         record; the stores are live, the reads are just invisible to the stream",
    ),
];

/// Whether `(kernel, pass)` has an allowlist entry; returns the reason.
pub fn allowlisted(kernel: &str, pass: &str) -> Option<&'static str> {
    ALLOWLIST.iter().find(|(k, p, _)| *k == kernel && *p == pass).map(|&(_, _, r)| r)
}

/// Run both lint passes over one recorded stream.
pub fn lint_dataflow(
    kernel: &str,
    profile: &str,
    events: &[VecEvent],
    allocs: &[AllocRecord],
) -> Vec<Finding> {
    let mut findings = redundant_loads(kernel, profile, events, allocs);
    findings.extend(dead_stores(kernel, profile, events, allocs));
    findings
}

// ---------------------------------------------------------------------
// Redundant-load pass
// ---------------------------------------------------------------------

/// Detect unit-stride loads whose exact byte range is already live in a
/// register. Per-register provenance: `Some((lo, hi))` means the register
/// holds exactly the bytes `[lo, hi)` as they currently are in memory.
fn redundant_loads(
    kernel: &str,
    profile: &str,
    events: &[VecEvent],
    allocs: &[AllocRecord],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut prov: [Option<(u64, u64)>; NUM_VREGS] = [None; NUM_VREGS];
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::Load => {
                let range = (ev.lo, ev.hi);
                if ev.op == "vle" {
                    if let Some(r) = prov.iter().position(|&p| p == Some(range)) {
                        findings.push(Finding {
                            pass: "redundant-load",
                            kernel: kernel.to_string(),
                            profile: profile.to_string(),
                            detail: format!(
                                "event #{i}: vle v{dst} reloads [{lo:#x}, {hi:#x}) of `{label}` \
                                 already live in v{r}",
                                dst = ev.dst.unwrap_or(0),
                                lo = ev.lo,
                                hi = ev.hi,
                                label = label_of(allocs, ev.lo),
                            ),
                        });
                    }
                }
                if let Some(d) = ev.dst {
                    // Only exact unit-stride ranges are trustworthy
                    // provenance; gathers and strided loads clear it.
                    prov[d] = (ev.op == "vle").then_some(range);
                }
            }
            EventKind::Store => {
                // Memory moved on from what any overlapping register holds.
                for p in &mut prov {
                    if let Some((lo, hi)) = *p {
                        if ev.lo < hi && lo < ev.hi {
                            *p = None;
                        }
                    }
                }
            }
            EventKind::Arith => {
                if let Some(d) = ev.dst {
                    // `vmv` copies provenance; everything else destroys it.
                    prov[d] = if ev.op == "vmv" { ev.srcs[0].and_then(|s| prov[s]) } else { None };
                }
            }
            EventKind::Reduce | EventKind::Grant | EventKind::PhaseBegin | EventKind::PhaseEnd => {}
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Dead-store pass
// ---------------------------------------------------------------------

/// Per-store accounting for the dead-store scan.
#[derive(Debug, Default, Clone)]
struct StoreState {
    total_bytes: u64,
    overwritten_bytes: u64,
    read: bool,
}

/// Detect stores fully overwritten before any read. Byte segments map to
/// the event index of their last writer; loads mark that writer as read,
/// later stores transfer the overlapped bytes to the overwritten tally.
fn dead_stores(
    kernel: &str,
    profile: &str,
    events: &[VecEvent],
    allocs: &[AllocRecord],
) -> Vec<Finding> {
    // start -> (end, writer event index). Maximal disjoint segments.
    let mut segs: BTreeMap<u64, (u64, usize)> = BTreeMap::new();
    let mut stores: BTreeMap<usize, StoreState> = BTreeMap::new();

    let split_at = |segs: &mut BTreeMap<u64, (u64, usize)>, at: u64| {
        if let Some((&start, &(end, w))) = segs.range(..at).next_back() {
            if end > at {
                segs.insert(start, (at, w));
                segs.insert(at, (end, w));
            }
        }
    };
    let overlapped =
        |segs: &BTreeMap<u64, (u64, usize)>, lo: u64, hi: u64| -> Vec<(u64, u64, usize)> {
            // Start from the last segment beginning at or before `lo` (it may
            // span into the range); everything later in `[lo, hi)` overlaps.
            let first = match segs.range(..=lo).next_back() {
                Some((&s, &(end, _))) if end > lo => s,
                _ => lo,
            };
            segs.range(first..hi)
                .filter(|&(_, &(end, _))| end > lo)
                .map(|(&s, &(e, w))| (s, e, w))
                .collect()
        };

    for (i, ev) in events.iter().enumerate() {
        if !ev.touches_memory() {
            continue;
        }
        match ev.kind {
            EventKind::Load => {
                for (_, _, w) in overlapped(&segs, ev.lo, ev.hi) {
                    if let Some(st) = stores.get_mut(&w) {
                        st.read = true;
                    }
                }
            }
            EventKind::Store if ev.op == "vse" => {
                split_at(&mut segs, ev.lo);
                split_at(&mut segs, ev.hi);
                for (s, e, w) in overlapped(&segs, ev.lo, ev.hi) {
                    segs.remove(&s);
                    if let Some(st) = stores.get_mut(&w) {
                        st.overwritten_bytes += e - s;
                    }
                }
                segs.insert(ev.lo, (ev.hi, i));
                stores
                    .insert(i, StoreState { total_bytes: ev.hi - ev.lo, ..StoreState::default() });
            }
            EventKind::Store => {
                // Strided/scattered store: its `[lo, hi)` span covers bytes
                // it does not write, so it can neither kill earlier stores
                // nor be proven dead itself. Conservatively keep every
                // overlapped store alive (its untouched bytes stay visible).
                for (_, _, w) in overlapped(&segs, ev.lo, ev.hi) {
                    if let Some(st) = stores.get_mut(&w) {
                        st.read = true;
                    }
                }
            }
            _ => {}
        }
    }

    stores
        .iter()
        .filter(|(_, st)| !st.read && st.overwritten_bytes == st.total_bytes)
        .map(|(&i, _)| {
            let ev = &events[i];
            Finding {
                pass: "dead-store",
                kernel: kernel.to_string(),
                profile: profile.to_string(),
                detail: format!(
                    "event #{i}: {op} to [{lo:#x}, {hi:#x}) of `{label}` is fully overwritten \
                     before any read",
                    op = ev.op,
                    lo = ev.lo,
                    hi = ev.hi,
                    label = label_of(allocs, ev.lo),
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reload_is_flagged_and_store_invalidates() {
        let events = vec![
            VecEvent::load("vle", 1, 0x100, 0x140, 16),
            VecEvent::load("vle", 2, 0x100, 0x140, 16), // redundant: v1 holds it
            VecEvent::store("vse", 2, 0x100, 0x140, 16),
            VecEvent::load("vle", 3, 0x100, 0x140, 16), // not redundant: memory changed
        ];
        let f = redundant_loads("k", "p", &events, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("event #1"), "{}", f[0].detail);
        assert!(f[0].detail.contains("already live in v1"), "{}", f[0].detail);
    }

    #[test]
    fn vmv_propagates_provenance_and_arith_clears_it() {
        let events = vec![
            VecEvent::load("vle", 1, 0x100, 0x140, 16),
            VecEvent::arith("vmv", 2, [Some(1), None, None], 16),
            VecEvent::arith("vfadd.vf", 1, [Some(1), None, None], 16), // v1 clobbered
            VecEvent::load("vle", 3, 0x100, 0x140, 16),                // still redundant via v2
        ];
        let f = redundant_loads("k", "p", &events, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("already live in v2"), "{}", f[0].detail);
    }

    #[test]
    fn partial_overlap_is_not_redundant() {
        let events = vec![
            VecEvent::load("vle", 1, 0x100, 0x140, 16),
            VecEvent::load("vle", 2, 0x100, 0x120, 8), // subset, not exact
        ];
        assert!(redundant_loads("k", "p", &events, &[]).is_empty());
    }

    #[test]
    fn fully_overwritten_unread_store_is_dead() {
        let events = vec![
            VecEvent::store("vse", 1, 0x100, 0x140, 16),
            VecEvent::store("vse", 2, 0x100, 0x140, 16), // kills the first
        ];
        let f = dead_stores("k", "p", &events, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("event #0"), "{}", f[0].detail);
    }

    #[test]
    fn read_or_partial_overwrite_keeps_a_store_live() {
        let events = vec![
            VecEvent::store("vse", 1, 0x100, 0x140, 16),
            VecEvent::load("vle", 2, 0x100, 0x110, 4), // read: live
            VecEvent::store("vse", 3, 0x100, 0x140, 16),
            VecEvent::store("vse", 4, 0x100, 0x120, 8), // partial: #2 stays live
        ];
        assert!(dead_stores("k", "p", &events, &[]).is_empty());
    }

    #[test]
    fn sparse_stores_neither_kill_nor_die() {
        let events = vec![
            VecEvent::store("vse", 1, 0x100, 0x140, 16),
            // Scatter spanning the same bytes: writes only some of them, so
            // it must not kill #0 — and must not be a dead-store candidate
            // itself even though the vse below covers its whole span.
            VecEvent::store("vscatter4", 2, 0x100, 0x140, 16),
            VecEvent::store("vse", 3, 0x100, 0x140, 16),
        ];
        assert!(dead_stores("k", "p", &events, &[]).is_empty());
    }

    #[test]
    fn end_of_stream_stores_escape() {
        let events = vec![VecEvent::store("vse", 1, 0x100, 0x140, 16)];
        assert!(dead_stores("k", "p", &events, &[]).is_empty());
    }
}
