//! Critical-path cycle lower bounds from the dependence DAG.
//!
//! For each recorded op event we derive a **floor** on the occupancy and
//! result latency the scoreboard in `lva_isa::machine` will charge — the
//! cost of the instruction assuming every memory access hits (exposed miss
//! time is the one non-negative term a static analysis cannot know, so the
//! floor sets it to zero) while replicating every other term of the model
//! exactly, including the active [`IdealSpec`] knobs. Two bounds follow:
//!
//! * **resource bound** — the vector unit is a single resource; every
//!   instruction holds it for `occ + gap` cycles (reductions additionally
//!   serialize the front end for their full latency), so the sum over the
//!   stream bounds the finish time from below;
//! * **dependence bound** — the longest path through the
//!   [`DepGraph`], charging each RAW register edge the producer's result
//!   latency (minus the core's out-of-order window) and every other edge
//!   the producer's occupancy + issue gap, since program order drains
//!   through the same unit.
//!
//! Both are provable floors of the simulated cycle count (the soundness
//! argument is spelled out in DESIGN.md §15 and asserted over the whole
//! kernel registry × design-point sweep by `tests/certify_registry.rs`);
//! the reported bound is their max, and `tightness = bound / simulated` is
//! the certifier's quality metric for how much of the schedule the DAG
//! explains.
//!
//! [`IdealSpec`]: lva_isa::IdealSpec

use lva_isa::{EventKind, MachineConfig, VecEvent};
use lva_sim::VpuPath;

use crate::graph::{DepGraph, DepKind, Via};

/// Floor on what one op event costs on `cfg`: minimum occupancy, minimum
/// result latency, and whether the op serializes the front end (reductions
/// — the scalar core consumes the result before the next issue).
#[derive(Debug, Clone, Copy)]
pub struct OpFloor {
    pub occ: u64,
    pub lat: u64,
    pub serial: bool,
}

/// Effective-parameter helpers mirroring `Machine::eff_*`: identity with
/// the ideal knobs off, idealized value with them on. Floors must shrink
/// exactly as the machine's own costs do or idealized configs would
/// violate the bound.
fn eff_startup(cfg: &MachineConfig) -> u64 {
    if cfg.ideal.zero_vector_startup {
        0
    } else {
        cfg.vpu.startup()
    }
}

fn eff_pipe_depth(cfg: &MachineConfig) -> u64 {
    if cfg.ideal.zero_vector_startup {
        0
    } else {
        cfg.vpu.pipe_depth as u64
    }
}

fn eff_chime(cfg: &MachineConfig, vl: usize) -> u64 {
    if cfg.ideal.infinite_lanes {
        1
    } else {
        cfg.vpu.chime(vl)
    }
}

fn eff_throughput(cfg: &MachineConfig, cycles: u64) -> u64 {
    if cfg.ideal.infinite_lanes {
        cycles.min(1)
    } else {
        cycles
    }
}

/// The post-issue gap every instruction leaves on the unit.
pub fn eff_gap(cfg: &MachineConfig) -> u64 {
    if cfg.ideal.infinite_issue {
        0
    } else {
        cfg.vpu.inter_instr_gap as u64
    }
}

/// Base memory latency of the VPU's attach point (L1 hit latency, or the
/// fixed 2-cycle vector-cache hit of the decoupled RVV path).
fn base_mem_lat(cfg: &MachineConfig) -> u64 {
    match cfg.mem.vpu_path {
        VpuPath::ThroughL1 => cfg.mem.l1.hit_latency as u64,
        VpuPath::DecoupledL2 { .. } => 2,
    }
}

/// The cost floor of one op event on `cfg`. Exact for arithmetic and
/// reductions (their costs are state-independent); for memory ops it is the
/// all-hits cost — `exposed = 0` is the only dropped term, and it is
/// non-negative, so `floor <= charged` always.
pub fn op_floor(cfg: &MachineConfig, ev: &VecEvent) -> OpFloor {
    let startup = eff_startup(cfg);
    match ev.kind {
        EventKind::Arith => {
            let chime = match ev.op {
                // Broadcasts are charged as single-element arithmetic.
                "vbroadcast" => eff_chime(cfg, 1),
                // Division/sqrt: several cycles per lane group.
                "vfdiv.vv" | "vfsqrt" => 8 * eff_chime(cfg, ev.vl),
                _ => eff_chime(cfg, ev.vl),
            };
            OpFloor { occ: chime, lat: startup + chime, serial: false }
        }
        EventKind::Reduce => {
            // Reduction-tree depth stays even under `infinite_lanes`.
            let tree = (cfg.vpu.lanes as f64).log2().ceil() as u64;
            let chime = eff_chime(cfg, ev.vl) + tree;
            OpFloor { occ: chime, lat: startup + chime, serial: true }
        }
        EventKind::Load | EventKind::Store => {
            let occ = mem_occ_floor(cfg, ev);
            let lat = if ev.kind == EventKind::Load {
                eff_pipe_depth(cfg) + base_mem_lat(cfg) + occ
            } else {
                // Stores retire through the store buffer: latency == occupancy.
                occ
            };
            OpFloor { occ, lat, serial: false }
        }
        // Grants and phase markers never reach the issue stage.
        EventKind::Grant | EventKind::PhaseBegin | EventKind::PhaseEnd => {
            OpFloor { occ: 0, lat: 0, serial: false }
        }
    }
}

/// Occupancy floor of a memory op, keyed by mnemonic (each has its own
/// slot model in the machine).
fn mem_occ_floor(cfg: &MachineConfig, ev: &VecEvent) -> u64 {
    let gec = cfg.vpu.gather_elem_cycles as u64;
    match ev.op {
        // Unit-stride: bus transfers for the moved bytes.
        "vle" | "vse" => {
            let tx = (4 * ev.vl as u64).div_ceil(cfg.vpu.bus_bytes as u64);
            eff_throughput(cfg, tx).max(1)
        }
        // Strided: one gather slot per element.
        "vlse" | "vsse" => eff_throughput(cfg, ev.vl as u64 * gec),
        // Indexed: one slot per *active* (non-sentinel) lane.
        "vgather" | "vscatter" => eff_throughput(cfg, (ev.active as u64 * gec).max(1)),
        // Structured group-of-4: one slot per group plus 2 permute cycles.
        "vgather4" | "vscatter4" => eff_throughput(cfg, (ev.active as u64).div_ceil(4).max(1) + 2),
        // Unknown memory op: 1 cycle is the smallest occupancy the issue
        // path ever charges, so the bound stays sound.
        _ => 1,
    }
}

/// The two lower bounds for one recorded stream, plus the critical path
/// (node indices into the DAG) realizing the dependence bound.
#[derive(Debug)]
pub struct LowerBound {
    /// Unit-occupancy bound: `sum(occ + gap)` with reductions serialized.
    pub resource: u64,
    /// Longest dependence path through the DAG.
    pub dependence: u64,
    /// `max(resource, dependence)` — the certified floor.
    pub bound: u64,
    /// Nodes of one maximal dependence path, in program order.
    pub critical_path: Vec<usize>,
}

/// Compute both bounds for `events` on `cfg`, using the prebuilt `graph`
/// (whose nodes index into `events` via `graph.node_events`).
pub fn lower_bound(cfg: &MachineConfig, events: &[VecEvent], graph: &DepGraph) -> LowerBound {
    let gap = eff_gap(cfg);
    let ooo = cfg.core.ooo_window;
    let floors: Vec<OpFloor> =
        graph.node_events.iter().map(|&ei| op_floor(cfg, &events[ei])).collect();

    // Resource bound: each instruction advances `unit_free` by at least
    // `occ + gap` past its start, and a reduction additionally advances the
    // front-end clock by its full latency before the next issue can start.
    let resource: u64 =
        floors.iter().map(|f| if f.serial { (f.occ + gap).max(f.lat) } else { f.occ + gap }).sum();

    // Dependence bound: longest path. Every edge at minimum chains through
    // the unit (`occ + gap`); a RAW register edge additionally waits for the
    // producer's result, less the out-of-order window; an edge out of a
    // serializing reduction waits for the front end to consume the scalar.
    let edge_weight = |e: &crate::graph::DepEdge| {
        let f = &floors[e.from];
        let through_unit = f.occ + gap;
        if f.serial {
            through_unit.max(f.lat)
        } else if e.dep == DepKind::Raw && matches!(e.via, Via::Reg(_)) {
            through_unit.max(f.lat.max(f.occ).saturating_sub(ooo))
        } else {
            through_unit
        }
    };
    // The path's last node must itself drain: the unit stays busy for
    // `occ + gap`, a destination register becomes ready at
    // `max(lat, occ)`, and a reduction holds the front end for `lat`.
    let node_tail = |n: usize| {
        let f = &floors[n];
        let has_dst = events[graph.node_events[n]].dst.is_some();
        let mut tail = f.occ + gap;
        if f.serial || has_dst {
            tail = tail.max(f.lat.max(f.occ));
        }
        tail
    };
    let (dependence, critical_path) = graph.longest_path(edge_weight, node_tail);

    LowerBound { resource, dependence, bound: resource.max(dependence), critical_path }
}

/// Tightness of a bound against the simulated cycle count, in percent.
/// 100% means the DAG fully explains the schedule; the gap is exposed miss
/// time plus slack the in-order issue logic could not reclaim.
pub fn tightness_pct(bound: u64, simulated: u64) -> f64 {
    if simulated == 0 {
        100.0
    } else {
        100.0 * bound as f64 / simulated as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_isa::DEFAULT_L2_BYTES;

    fn rvv() -> MachineConfig {
        MachineConfig::rvv_gem5(4096, 8, DEFAULT_L2_BYTES)
    }

    #[test]
    fn arith_floor_matches_chime_model() {
        let cfg = rvv();
        let f = op_floor(&cfg, &VecEvent::arith("vfadd.vv", 1, [Some(2), Some(3), None], 128));
        // 128 elems / 8 lanes = 16-cycle chime; startup = pipe 8 + lanes 8.
        assert_eq!((f.occ, f.lat, f.serial), (16, 32, false));
    }

    #[test]
    fn broadcast_floor_is_single_element() {
        let cfg = rvv();
        let f = op_floor(&cfg, &VecEvent::arith("vbroadcast", 1, [None, None, None], 128));
        assert_eq!((f.occ, f.lat), (1, 17));
    }

    #[test]
    fn reduce_floor_is_serial_with_tree_term() {
        let cfg = rvv();
        let f = op_floor(&cfg, &VecEvent::reduce("vfredsum", 1, 128));
        // chime 16 + log2(8 lanes) = 19.
        assert_eq!((f.occ, f.lat, f.serial), (19, 35, true));
    }

    #[test]
    fn load_floor_counts_bus_transfers() {
        let cfg = rvv();
        let f = op_floor(&cfg, &VecEvent::load("vle", 1, 0x100, 0x300, 128));
        // 512 bytes / 32-byte bus = 16 transfers; +pipe 8 +vcache hit 2.
        assert_eq!((f.occ, f.lat), (16, 26));
        let s = op_floor(&cfg, &VecEvent::store("vse", 1, 0x100, 0x300, 128));
        assert_eq!((s.occ, s.lat), (16, 16));
    }

    #[test]
    fn ideal_knobs_shrink_floors() {
        let mut cfg = rvv();
        cfg.ideal.infinite_lanes = true;
        cfg.ideal.zero_vector_startup = true;
        let f = op_floor(&cfg, &VecEvent::arith("vfadd.vv", 1, [Some(2), Some(3), None], 128));
        assert_eq!((f.occ, f.lat), (1, 1));
        let l = op_floor(&cfg, &VecEvent::load("vle", 1, 0x100, 0x300, 128));
        assert_eq!((l.occ, l.lat), (1, 3));
    }

    #[test]
    fn dependence_chain_beats_resource_on_serial_raw() {
        let cfg = rvv();
        // load -> fma -> store, all through v1: a pure RAW chain.
        let events = vec![
            VecEvent::load("vle", 1, 0x100, 0x300, 128),
            VecEvent::arith("vfmul.vf", 2, [Some(1), None, None], 128),
            VecEvent::store("vse", 2, 0x400, 0x600, 128),
        ];
        let g = DepGraph::build(&events, &[]);
        let lb = lower_bound(&cfg, &events, &g);
        // Chain of RAW latencies: load result at 26 (> occ+gap = 19), the
        // fma's result at +32 (startup 16 + chime 16), store drains for
        // occ+gap = 19.
        assert_eq!(lb.dependence, 26 + 32 + 19);
        assert_eq!(lb.resource, (16 + 3) * 3);
        assert_eq!(lb.bound, 77);
        assert_eq!(lb.critical_path, vec![0, 1, 2]);
    }
}
