//! # lva-depgraph — dependence-graph certifier for the recorded VecEvent IR
//!
//! Everything downstream of the simulator that replays or re-times a
//! recorded kernel — the sweep executor, the what-if engine, the energy
//! counterfactuals — leans on one unstated assumption: that the
//! [`lva_isa::VecEvent`] stream is a pure function of the architectural
//! inputs, independent of the timing state being varied. This crate makes
//! that assumption checkable, and extracts two analyses the explicit
//! dependence structure pays for:
//!
//! * [`graph`] — the full RAW/WAR/WAW data-dependence DAG of a stream,
//!   over vector registers *and* memory byte ranges (sorted-range index
//!   per named allocation; `O(n log n)`).
//! * [`certify`] — retime-safety certificates: per kernel × design point,
//!   the stream is re-recorded under timing perturbations and must not
//!   move; within an ISA, the two swept vector lengths must agree on
//!   VL-neutral projections (equivalence modulo granted-VL renaming).
//! * [`bounds`] — critical-path cycle lower bounds from the DAG plus
//!   per-op cost floors, provably `<=` the simulated cycle count; the
//!   tightness ratio says how much of the schedule the dependence
//!   structure explains.
//! * [`lints`] — redundant-load and dead-store detection, the two
//!   dataflow wastes the DAG exposes directly.
//!
//! The `lint-dataflow` binary runs all of it over the kernel registry of
//! `lva-check` and gates CI with the same exit-code contract as
//! `lint-kernels` (0 clean, 1 findings, 2 internal error).

#![forbid(unsafe_code)]

pub mod bounds;
pub mod certify;
pub mod dataflow_report;
pub mod graph;
pub mod lints;

pub use bounds::{lower_bound, op_floor, tightness_pct, LowerBound, OpFloor};
pub use certify::{certify_kernel, RetimeCertificate, VlSummary};
pub use dataflow_report::dataflow_markdown;
pub use graph::{DepEdge, DepGraph, DepKind, Via};
pub use lints::{allowlisted, lint_dataflow, ALLOWLIST};
