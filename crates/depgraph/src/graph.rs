//! The data-dependence DAG over a recorded [`VecEvent`] stream.
//!
//! Nodes are the *op* events (loads, stores, arithmetic, reductions);
//! grants and phase markers carry no dataflow and are skipped. Edges are
//! the three classic hazards, tracked over two spaces at once:
//!
//! * **vector registers** — a per-register last-writer plus
//!   readers-since-last-write set, exactly the state a scoreboard keeps;
//! * **memory byte ranges** — a sorted-range (segment) index per named
//!   allocation from the [`Memory::alloc_named`] registry (plus one
//!   fallback bucket for unregistered addresses), so overlap queries cost
//!   `O(log segments)` and the whole build stays `O(n log n)` on
//!   full-network streams.
//!
//! The edge set is the ground truth a trace-once/retime-many engine must
//! respect: any reordering that preserves all RAW/WAR/WAW edges replays to
//! the same architectural state. The critical-path lower bounds in
//! [`crate::bounds`] are longest paths through this DAG.
//!
//! [`Memory::alloc_named`]: lva_sim::Memory::alloc_named

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use lva_isa::{EventKind, VReg, VecEvent, NUM_VREGS};
use lva_sim::AllocRecord;

/// Hazard class of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepKind {
    /// Read-after-write: true dataflow.
    Raw,
    /// Write-after-read: anti-dependence.
    War,
    /// Write-after-write: output dependence.
    Waw,
}

impl DepKind {
    pub fn name(self) -> &'static str {
        match self {
            DepKind::Raw => "RAW",
            DepKind::War => "WAR",
            DepKind::Waw => "WAW",
        }
    }
}

/// What carries the dependence: a vector register or a memory byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Via {
    Reg(VReg),
    Mem,
}

/// One dependence edge between two DAG nodes (indices into
/// [`DepGraph::node_events`]'s order, i.e. op-event order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DepEdge {
    pub from: usize,
    pub to: usize,
    pub dep: DepKind,
    pub via: Via,
}

/// The dependence DAG of one recorded stream. Node `i` is the `i`-th op
/// event; `node_events[i]` maps it back to its index in the full stream
/// (which still contains grants and phase markers).
#[derive(Debug)]
pub struct DepGraph {
    pub node_events: Vec<usize>,
    /// Sorted by `(to, from, dep, via)`, deduplicated.
    pub edges: Vec<DepEdge>,
}

impl DepGraph {
    /// Build the full RAW/WAR/WAW DAG for `events`, bucketing memory
    /// ranges by the allocations in `allocs`.
    pub fn build(events: &[VecEvent], allocs: &[AllocRecord]) -> DepGraph {
        Builder::new(allocs).run(events)
    }

    pub fn nodes(&self) -> usize {
        self.node_events.len()
    }

    /// Edges of one hazard class (for oracle tests and reports).
    pub fn edges_of(&self, dep: DepKind) -> Vec<DepEdge> {
        self.edges.iter().copied().filter(|e| e.dep == dep).collect()
    }

    /// Longest path through the DAG under caller-supplied weights:
    /// `edge_weight(e)` is the cost charged along edge `e` (attributed to
    /// its source node), `node_tail(n)` the cost the path's *final* node
    /// adds. Returns the length and the node sequence of one maximal path.
    /// Nodes are in program order, which is a topological order (every
    /// edge points forward), so one linear sweep suffices.
    pub fn longest_path(
        &self,
        edge_weight: impl Fn(&DepEdge) -> u64,
        node_tail: impl Fn(usize) -> u64,
    ) -> (u64, Vec<usize>) {
        let n = self.nodes();
        let mut dist = vec![0u64; n];
        let mut pred = vec![usize::MAX; n];
        // Edges are sorted by `to`, so a single pass relaxes in topo order.
        for e in &self.edges {
            debug_assert!(e.from < e.to, "dependence edges must point forward");
            let cand = dist[e.from] + edge_weight(e);
            if cand > dist[e.to] {
                dist[e.to] = cand;
                pred[e.to] = e.from;
            }
        }
        let mut best = 0u64;
        let mut end = usize::MAX;
        for (i, &d) in dist.iter().enumerate() {
            let total = d + node_tail(i);
            if total > best {
                best = total;
                end = i;
            }
        }
        let mut path = Vec::new();
        let mut cur = end;
        while cur != usize::MAX {
            path.push(cur);
            cur = pred[cur];
        }
        path.reverse();
        (best, path)
    }
}

/// Which registers an op event reads. Loads read none (their sources are
/// memory); stores read the stored register; arithmetic and reductions
/// read `srcs`.
fn reads_of(ev: &VecEvent) -> impl Iterator<Item = VReg> + '_ {
    let relevant = matches!(ev.kind, EventKind::Store | EventKind::Arith | EventKind::Reduce);
    ev.srcs.iter().flatten().copied().filter(move |_| relevant)
}

/// Whether an event is a DAG node (does architectural work).
fn is_op(ev: &VecEvent) -> bool {
    matches!(ev.kind, EventKind::Load | EventKind::Store | EventKind::Arith | EventKind::Reduce)
}

// ---------------------------------------------------------------------
// Sorted-range index over one address-space bucket
// ---------------------------------------------------------------------

/// Per-byte-range dataflow state: the node that last wrote a segment and
/// the nodes that read it since. Segments are maximal runs with identical
/// state, keyed by start address in a `BTreeMap` (the sorted-range index).
#[derive(Debug, Clone)]
struct Seg {
    end: u64,
    writer: Option<usize>,
    readers: Vec<usize>,
}

#[derive(Debug, Default)]
struct SegStore {
    segs: BTreeMap<u64, Seg>,
}

impl SegStore {
    /// Split any segment spanning `at` so that `at` becomes a boundary.
    fn split_at(&mut self, at: u64) {
        if let Some((_, seg)) = self.segs.range_mut(..at).next_back() {
            if seg.end > at {
                let right = Seg { end: seg.end, writer: seg.writer, readers: seg.readers.clone() };
                seg.end = at;
                self.segs.insert(at, right);
            }
        }
    }

    /// Visit every segment overlapping `[lo, hi)`, in address order.
    fn overlapping(&self, lo: u64, hi: u64) -> Vec<(u64, Seg)> {
        let first = match self.segs.range(..=lo).next_back() {
            Some((&s, seg)) if seg.end > lo => s,
            _ => lo,
        };
        self.segs
            .range(first..hi)
            .filter(|(_, seg)| seg.end > lo)
            .map(|(&s, seg)| (s, seg.clone()))
            .collect()
    }

    /// Record a read of `[lo, hi)` by `node`; returns the writers seen
    /// (RAW sources). Gaps (never-touched bytes) become reader-only
    /// segments so a later write still sees the WAR hazard.
    fn read(&mut self, lo: u64, hi: u64, node: usize) -> Vec<usize> {
        self.split_at(lo);
        self.split_at(hi);
        let mut raw_from = Vec::new();
        let mut cursor = lo;
        let mut inserts: Vec<(u64, Seg)> = Vec::new();
        for (start, _) in self.overlapping(lo, hi) {
            let seg = self.segs.get_mut(&start).expect("segment vanished");
            if start > cursor {
                inserts.push((cursor, Seg { end: start, writer: None, readers: vec![node] }));
            }
            if let Some(w) = seg.writer {
                raw_from.push(w);
            }
            if seg.readers.last() != Some(&node) {
                seg.readers.push(node);
            }
            cursor = seg.end;
        }
        if cursor < hi {
            inserts.push((cursor, Seg { end: hi, writer: None, readers: vec![node] }));
        }
        for (s, seg) in inserts {
            match self.segs.entry(s) {
                Entry::Vacant(v) => {
                    v.insert(seg);
                }
                Entry::Occupied(_) => unreachable!("gap segment collides with existing"),
            }
        }
        raw_from.sort_unstable();
        raw_from.dedup();
        raw_from
    }

    /// Record a write of `[lo, hi)` by `node`; returns `(waw_from,
    /// war_from)` — the overwritten writers and the outstanding readers.
    /// The range collapses to one segment owned by `node`.
    fn write(&mut self, lo: u64, hi: u64, node: usize) -> (Vec<usize>, Vec<usize>) {
        self.split_at(lo);
        self.split_at(hi);
        let mut waw = Vec::new();
        let mut war = Vec::new();
        let covered: Vec<u64> = self.overlapping(lo, hi).into_iter().map(|(s, _)| s).collect();
        for s in covered {
            let seg = self.segs.remove(&s).expect("segment vanished");
            if let Some(w) = seg.writer {
                waw.push(w);
            }
            war.extend(seg.readers);
        }
        self.segs.insert(lo, Seg { end: hi, writer: Some(node), readers: Vec::new() });
        waw.sort_unstable();
        waw.dedup();
        war.sort_unstable();
        war.dedup();
        (waw, war)
    }
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Address-space bucketing over the allocation registry: each named
/// allocation gets its own [`SegStore`]; addresses outside every
/// registered buffer share a fallback bucket. Bucket lookup is a binary
/// search over the sorted allocation bases.
struct Builder {
    /// `(base, end_of_padded_extent)` per allocation, sorted by base.
    bounds: Vec<(u64, u64)>,
    stores: Vec<SegStore>,
    fallback: SegStore,
    last_def: [Option<usize>; NUM_VREGS],
    readers: [Vec<usize>; NUM_VREGS],
    edges: BTreeSet<DepEdge>,
}

impl Builder {
    fn new(allocs: &[AllocRecord]) -> Builder {
        let mut bounds: Vec<(u64, u64)> =
            allocs.iter().map(|a| (a.buf.base, a.buf.base + a.buf.bytes() as u64)).collect();
        bounds.sort_unstable();
        let stores = bounds.iter().map(|_| SegStore::default()).collect();
        Builder {
            bounds,
            stores,
            fallback: SegStore::default(),
            last_def: [None; NUM_VREGS],
            readers: std::array::from_fn(|_| Vec::new()),
            edges: BTreeSet::new(),
        }
    }

    /// The segment bucket owning `lo` (ranges never span allocations —
    /// the sanitizer's OOB pass guarantees accesses stay inside one
    /// buffer; anything else lands in the fallback bucket).
    fn bucket(&mut self, lo: u64) -> &mut SegStore {
        match self.bounds.partition_point(|&(base, _)| base <= lo).checked_sub(1) {
            Some(i) if self.bounds[i].1 > lo => &mut self.stores[i],
            _ => &mut self.fallback,
        }
    }

    fn edge(&mut self, from: usize, to: usize, dep: DepKind, via: Via) {
        if from != to {
            self.edges.insert(DepEdge { from, to, dep, via });
        }
    }

    fn run(mut self, events: &[VecEvent]) -> DepGraph {
        let mut node_events = Vec::new();
        for (ei, ev) in events.iter().enumerate() {
            if !is_op(ev) {
                continue;
            }
            let node = node_events.len();
            node_events.push(ei);

            // Register reads first: RAW from the live definition.
            for r in reads_of(ev) {
                if let Some(def) = self.last_def[r] {
                    self.edge(def, node, DepKind::Raw, Via::Reg(r));
                }
                if self.readers[r].last() != Some(&node) {
                    self.readers[r].push(node);
                }
            }

            // Memory access (before the register def: a load reads memory,
            // then defines its destination).
            if ev.touches_memory() {
                let (lo, hi) = (ev.lo, ev.hi);
                if ev.writes_memory() {
                    let (waw, war) = self.bucket(lo).write(lo, hi, node);
                    for w in waw {
                        self.edge(w, node, DepKind::Waw, Via::Mem);
                    }
                    for r in war {
                        self.edge(r, node, DepKind::War, Via::Mem);
                    }
                } else {
                    let raw = self.bucket(lo).read(lo, hi, node);
                    for w in raw {
                        self.edge(w, node, DepKind::Raw, Via::Mem);
                    }
                }
            }

            // Register definition: WAW against the previous def, WAR
            // against every reader since (excluding this op's own read of
            // its destination, e.g. `vfmacc vd, va, vb` reading old vd —
            // that is the RAW edge above, not a self-hazard).
            if let Some(d) = ev.dst {
                if let Some(prev) = self.last_def[d] {
                    self.edge(prev, node, DepKind::Waw, Via::Reg(d));
                }
                for r in std::mem::take(&mut self.readers[d]) {
                    self.edge(r, node, DepKind::War, Via::Reg(d));
                }
                self.last_def[d] = Some(node);
            }
        }
        DepGraph { node_events, edges: self.edges.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_isa::VecEvent;

    #[test]
    fn segment_store_splits_and_merges() {
        let mut s = SegStore::default();
        let (waw, war) = s.write(0, 64, 0);
        assert!(waw.is_empty() && war.is_empty());
        // Read the middle: RAW from node 0.
        assert_eq!(s.read(16, 32, 1), vec![0]);
        // Overwrite the left half: WAW from 0, WAR from 1.
        let (waw, war) = s.write(0, 24, 2);
        assert_eq!(waw, vec![0]);
        assert_eq!(war, vec![1]);
        // The right half still belongs to node 0.
        assert_eq!(s.read(32, 64, 3), vec![0]);
    }

    #[test]
    fn read_of_untouched_bytes_still_registers_war() {
        let mut s = SegStore::default();
        assert!(s.read(0, 32, 0).is_empty());
        let (waw, war) = s.write(0, 32, 1);
        assert!(waw.is_empty());
        assert_eq!(war, vec![0]);
    }

    #[test]
    fn grants_and_phase_markers_are_not_nodes() {
        let events = vec![
            VecEvent::grant("setvl", 100, 16),
            VecEvent::load("vle", 1, 0x100, 0x140, 16),
            VecEvent::grant("setvl", 84, 16),
            VecEvent::store("vse", 1, 0x200, 0x240, 16),
        ];
        let g = DepGraph::build(&events, &[]);
        assert_eq!(g.nodes(), 2);
        assert_eq!(g.node_events, vec![1, 3]);
        assert_eq!(g.edges, vec![DepEdge { from: 0, to: 1, dep: DepKind::Raw, via: Via::Reg(1) }]);
    }
}
