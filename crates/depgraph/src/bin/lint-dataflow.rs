//! `lint-dataflow` — dependence-graph certifier and dataflow linter over
//! the kernel registry.
//!
//! For every registered kernel × supported design point this tool builds
//! the RAW/WAR/WAW dependence DAG, proves retime safety (timing-invariance
//! under perturbations plus VL-renaming equivalence within each ISA),
//! checks the critical-path lower bound against the simulated cycle count,
//! and runs the redundant-load / dead-store lint passes. It prints the
//! JSON report, renders `results/DATAFLOW.md`, and gates CI.
//!
//! Exit codes follow the `lint-kernels` contract: 0 = clean (allowlisted
//! findings are reported but do not gate), 1 = new findings or an
//! uncertified kernel, 2 = internal error (panicking kernel, bad
//! arguments, I/O failure).

use std::panic::{catch_unwind, AssertUnwindSafe};

use lva_check::{record_kernel, registered_kernels, sweep_configs, Finding};
use lva_core::cli::Opts;
use lva_core::Json;
use lva_depgraph::{allowlisted, certify_kernel, lint_dataflow};

fn main() {
    // `--jobs N` fans the per-kernel certification out over worker threads
    // (0 = all cores); submission-order collection keeps the report
    // byte-identical for every N.
    let opts = Opts::parse_tool("lint-dataflow: dependence-graph certifier + dataflow lints");

    let configs = sweep_configs();
    let kernels = registered_kernels();

    // One unit of work per kernel: certify across its supported design
    // points, then lint each recorded stream. A panic is an internal error.
    type KernelResult = Result<(Json, Vec<Finding>, usize), String>;
    let per_kernel: Vec<KernelResult> = lva_core::parallel_map(&kernels, opts.jobs, |_, case| {
        catch_unwind(AssertUnwindSafe(|| {
            let (cert, mut findings) = certify_kernel(case, &configs);
            let mut runs = 0usize;
            for (profile, cfg) in configs.iter().filter(|(_, c)| case.supports(c.vpu.isa)) {
                let rec = record_kernel(case, cfg);
                findings.extend(lint_dataflow(case.name, profile, &rec.events, &rec.allocs));
                runs += 1;
            }
            (cert.to_json(), findings, runs)
        }))
        .map_err(|e| format!("{}: {}", case.name, panic_message(&e)))
    });

    let mut certificates = Vec::new();
    let mut gating: Vec<Finding> = Vec::new();
    let mut allowed: Vec<(Finding, &'static str)> = Vec::new();
    let mut runs = 0usize;
    let mut errors: Vec<String> = Vec::new();
    for r in per_kernel {
        match r {
            Ok((cert, findings, n)) => {
                certificates.push(cert);
                runs += n;
                for f in findings {
                    match allowlisted(&f.kernel, f.pass) {
                        Some(reason) => allowed.push((f, reason)),
                        None => gating.push(f),
                    }
                }
            }
            Err(e) => errors.push(e),
        }
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("lint-dataflow: internal error in {e}");
        }
        std::process::exit(2);
    }

    let report = Json::obj()
        .field("tool", "lint-dataflow")
        .field("version", env!("CARGO_PKG_VERSION"))
        .field("design_points", configs.iter().map(|(p, _)| Json::from(*p)).collect::<Vec<_>>())
        .field("kernels", kernels.iter().map(|k| Json::from(k.name)).collect::<Vec<_>>())
        .field("kernel_runs", runs)
        .field("certificates", certificates)
        .field("findings", gating.iter().map(Finding::to_json).collect::<Vec<_>>())
        .field(
            "allowlisted",
            allowed
                .iter()
                .map(|(f, reason)| f.to_json().field("reason", *reason))
                .collect::<Vec<_>>(),
        )
        .field("finding_count", gating.len());
    println!("{}", report.to_string_pretty());
    save_markdown(&report);
    if opts.json {
        save_results_json(&report, "lint-dataflow");
    }
    lva_trace::flush();

    if !gating.is_empty() {
        eprintln!("lint-dataflow: {} gating finding(s)", gating.len());
        std::process::exit(1);
    }
}

/// Render the human-readable companion report next to the JSON.
fn save_markdown(report: &Json) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create results/: {e}");
        std::process::exit(2);
    }
    let path = dir.join("DATAFLOW.md");
    if let Err(e) = std::fs::write(&path, lva_depgraph::dataflow_markdown(report)) {
        eprintln!("could not save {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("[saved {}]", path.display());
}

fn save_results_json(report: &Json, name: &str) {
    let path = std::path::Path::new("results").join(format!("{name}.json"));
    let mut body = report.to_string_pretty();
    body.push('\n');
    match std::fs::write(&path, body) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => {
            eprintln!("could not save {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked".to_string()
    }
}
