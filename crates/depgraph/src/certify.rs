//! Retime-safety certification of registered kernels.
//!
//! A trace-once/retime-many engine (the sweep executor in `lva-sim`, the
//! what-if engine in `lva-whatif`, the energy counterfactuals in
//! `lva-energy`) records a kernel's [`VecEvent`] stream once and replays it
//! under many timing models. That is only sound if the stream is a function
//! of the *architectural* inputs — kernel, shape, ISA, granted vector
//! length — and not of the timing state being varied. This module proves it
//! per kernel × design point and emits a machine-readable
//! [`RetimeCertificate`]:
//!
//! 1. **Timing-invariance** — the kernel is re-recorded under four
//!    perturbations that change only what a retime run may change (L2
//!    capacity, lane count, the reference functional model, all ideal
//!    knobs at once) and each stream must be event-for-event identical to
//!    the baseline (hash plus full comparison).
//! 2. **VL-renaming equivalence** — within one ISA, the streams at the two
//!    swept vector lengths are projected onto VL-neutral invariants (total
//!    active lanes per mnemonic, per-buffer element traffic). Strip-mine
//!    chunking renames how `vl` splits across events; the projections are
//!    exactly what renaming must preserve.
//! 3. **Lower-bound soundness** — the [`crate::bounds`] floor must not
//!    exceed the simulated cycle count.
//!
//! Any violation downgrades the certificate and surfaces as a finding in
//! `lint-dataflow` (passes `config-variance`, `vl-equivalence`,
//! `bound-violation`).
//!
//! [`VecEvent`]: lva_isa::VecEvent

use std::collections::BTreeMap;

use lva_check::{record_kernel, Finding, KernelCase, RecordedKernel};
use lva_core::Json;
use lva_isa::{stream_hash, EventKind, IdealSpec, IsaKind, Machine, MachineConfig, VecEvent};
use lva_sim::AllocRecord;

use crate::bounds::{lower_bound, tightness_pct, LowerBound};
use crate::graph::{DepGraph, DepKind};

/// The perturbations a certified kernel's stream must be invariant under.
/// Each changes something a retime run is allowed to vary; none may move a
/// single recorded event.
pub const PERTURBATIONS: [&str; 4] = ["l2-4MiB", "lanes-halved", "reference-model", "ideal-all"];

/// Re-record `case` under one named perturbation of `cfg`.
fn record_perturbed(case: &KernelCase, cfg: &MachineConfig, which: &str) -> Vec<VecEvent> {
    let mut setup: fn(&mut Machine) = |_| {};
    let run_cfg = match which {
        "l2-4MiB" => {
            let l2 = 4 << 20;
            match cfg.vpu.isa {
                IsaKind::Rvv => MachineConfig::rvv_gem5(cfg.vpu.vlen_bits, cfg.vpu.lanes, l2),
                IsaKind::Sve => MachineConfig::sve_gem5(cfg.vpu.vlen_bits, l2),
            }
        }
        "lanes-halved" => {
            let mut c = cfg.clone();
            c.vpu.lanes = (c.vpu.lanes / 2).max(1);
            c
        }
        "reference-model" => {
            setup = |m| m.set_reference_model(true);
            cfg.clone()
        }
        "ideal-all" => {
            setup = |m| {
                m.set_ideal(IdealSpec {
                    perfect_l1: true,
                    perfect_l2: true,
                    zero_vector_startup: true,
                    infinite_lanes: true,
                    infinite_issue: true,
                });
            };
            cfg.clone()
        }
        other => panic!("unknown perturbation {other:?}"),
    };
    let mut m = Machine::new(run_cfg);
    setup(&mut m);
    m.record_events();
    (case.run)(&mut m);
    m.take_events()
}

/// VL-neutral projection of one recorded run: the invariants granted-VL
/// renaming must preserve. Addresses are *not* compared across vector
/// lengths (scratch buffers may be sized by the hardware VL); per-buffer
/// totals and per-mnemonic work are.
#[derive(Debug, PartialEq, Eq)]
pub struct VlSummary {
    /// Total active lanes per mnemonic over all op events.
    pub op_work: BTreeMap<&'static str, u64>,
    /// Per-allocation-label `(loaded, stored)` element totals.
    pub traffic: BTreeMap<String, (u64, u64)>,
}

/// The allocation label owning byte address `addr`, or `"<unmapped>"`.
pub fn label_of(allocs: &[AllocRecord], addr: u64) -> String {
    allocs
        .iter()
        .find(|a| a.buf.base <= addr && addr < a.buf.base + a.buf.bytes() as u64)
        .map_or_else(|| "<unmapped>".to_string(), |a| a.label.clone())
}

impl VlSummary {
    pub fn build(events: &[VecEvent], allocs: &[AllocRecord]) -> VlSummary {
        let mut op_work: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut traffic: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                EventKind::Load | EventKind::Store | EventKind::Arith => {
                    // A broadcast's lane count *is* the granted VL — one
                    // splat fills however wide the register is — so its
                    // active-lane total scales with the hardware VL by
                    // definition and is quotiented out of the projection.
                    if ev.op != "vbroadcast" {
                        *op_work.entry(ev.op).or_default() += ev.active as u64;
                    }
                }
                EventKind::Reduce => {
                    // A reduction folds a full register (lane count = the
                    // granted VL) but yields exactly one scalar, so the
                    // VL-neutral invariant is the *count* of reductions.
                    *op_work.entry(ev.op).or_default() += 1;
                }
                _ => continue,
            }
            if ev.touches_memory() {
                let slot = traffic.entry(label_of(allocs, ev.lo)).or_default();
                if ev.kind == EventKind::Load {
                    slot.0 += ev.active as u64;
                } else if ev.kind == EventKind::Store {
                    slot.1 += ev.active as u64;
                }
            }
        }
        VlSummary { op_work, traffic }
    }

    /// First difference against `other`, as a human-readable description.
    pub fn diff(&self, other: &VlSummary) -> Option<String> {
        for key in self.op_work.keys().chain(other.op_work.keys()) {
            let (a, b) = (
                self.op_work.get(key).copied().unwrap_or(0),
                other.op_work.get(key).copied().unwrap_or(0),
            );
            if a != b {
                return Some(format!("op `{key}` total active lanes {a} vs {b}"));
            }
        }
        for key in self.traffic.keys().chain(other.traffic.keys()) {
            let (a, b) = (
                self.traffic.get(key).copied().unwrap_or((0, 0)),
                other.traffic.get(key).copied().unwrap_or((0, 0)),
            );
            if a != b {
                return Some(format!(
                    "buffer `{key}` element traffic (loaded, stored) {a:?} vs {b:?}"
                ));
            }
        }
        None
    }
}

/// Certification record of one kernel at one design point.
#[derive(Debug)]
pub struct PointRecord {
    pub profile: String,
    /// FNV-1a fingerprint of the baseline stream ([`lva_isa::stream_hash`]).
    pub stream_hash: u64,
    pub events: usize,
    pub nodes: usize,
    pub raw_edges: usize,
    pub war_edges: usize,
    pub waw_edges: usize,
    pub cycles: u64,
    pub lb: LowerBound,
    pub tightness_pct: f64,
    /// Perturbations whose re-recorded stream matched the baseline.
    pub invariant_under: Vec<&'static str>,
    /// All perturbations held *and* the lower bound is sound.
    pub invariant: bool,
}

/// Within-ISA VL-renaming comparison of two design points.
#[derive(Debug)]
pub struct VlEquivalence {
    pub isa: &'static str,
    pub points: (String, String),
    pub equivalent: bool,
    /// Empty when equivalent; otherwise the first mismatching projection.
    pub detail: String,
}

/// The machine-readable retime-safety certificate of one kernel: which
/// design points its stream was proven timing-invariant on, whether the
/// swept vector lengths are renaming-equivalent, and the critical-path
/// tightness at each point.
#[derive(Debug)]
pub struct RetimeCertificate {
    pub kernel: String,
    pub shape: String,
    pub points: Vec<PointRecord>,
    pub vl_equivalence: Vec<VlEquivalence>,
    pub certified: bool,
}

impl RetimeCertificate {
    pub fn to_json(&self) -> Json {
        let points = self.points.iter().map(|p| {
            Json::obj()
                .field("profile", p.profile.as_str())
                .field("stream_hash", format!("{:016x}", p.stream_hash).as_str())
                .field("events", p.events as u64)
                .field("nodes", p.nodes as u64)
                .field("raw_edges", p.raw_edges as u64)
                .field("war_edges", p.war_edges as u64)
                .field("waw_edges", p.waw_edges as u64)
                .field("cycles", p.cycles)
                .field("lb_resource", p.lb.resource)
                .field("lb_dependence", p.lb.dependence)
                .field("lb_bound", p.lb.bound)
                .field("tightness_pct", p.tightness_pct)
                .field(
                    "invariant_under",
                    Json::Arr(
                        p.invariant_under.iter().map(|&s| Json::Str(s.to_string())).collect(),
                    ),
                )
                .field("invariant", p.invariant)
        });
        let vls = self.vl_equivalence.iter().map(|v| {
            Json::obj()
                .field("isa", v.isa)
                .field("low", v.points.0.as_str())
                .field("high", v.points.1.as_str())
                .field("equivalent", v.equivalent)
                .field("detail", v.detail.as_str())
        });
        Json::obj()
            .field("kernel", self.kernel.as_str())
            .field("shape", self.shape.as_str())
            .field("points", Json::Arr(points.collect()))
            .field("vl_equivalence", Json::Arr(vls.collect()))
            .field("certified", self.certified)
    }
}

/// Certify one kernel over every design point it supports. Returns the
/// certificate and any findings (passes `config-variance`,
/// `vl-equivalence`, `bound-violation`).
pub fn certify_kernel(
    case: &KernelCase,
    sweep: &[(&'static str, MachineConfig)],
) -> (RetimeCertificate, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut points = Vec::new();
    // Per supported point: the recorded baseline and its VL summary,
    // grouped by ISA for the renaming comparison afterwards.
    let mut by_isa: BTreeMap<&'static str, Vec<(String, VlSummary)>> = BTreeMap::new();

    for (profile, cfg) in sweep {
        if !case.supports(cfg.vpu.isa) {
            continue;
        }
        let rec: RecordedKernel = record_kernel(case, cfg);
        let base_hash = stream_hash(&rec.events);

        let mut invariant_under = Vec::new();
        for which in PERTURBATIONS {
            let perturbed = record_perturbed(case, cfg, which);
            if perturbed == rec.events {
                invariant_under.push(which);
            } else {
                findings.push(Finding {
                    pass: "config-variance",
                    kernel: case.name.to_string(),
                    profile: profile.to_string(),
                    detail: describe_variance(&rec.events, &perturbed, which),
                });
            }
        }

        let graph = DepGraph::build(&rec.events, &rec.allocs);
        let lb = lower_bound(cfg, &rec.events, &graph);
        let sound = lb.bound <= rec.cycles;
        if !sound {
            findings.push(Finding {
                pass: "bound-violation",
                kernel: case.name.to_string(),
                profile: profile.to_string(),
                detail: format!(
                    "critical-path lower bound {} exceeds simulated cycles {}",
                    lb.bound, rec.cycles
                ),
            });
        }

        let isa_label = match cfg.vpu.isa {
            IsaKind::Rvv => "rvv",
            IsaKind::Sve => "sve",
        };
        by_isa
            .entry(isa_label)
            .or_default()
            .push((profile.to_string(), VlSummary::build(&rec.events, &rec.allocs)));

        let invariant = invariant_under.len() == PERTURBATIONS.len() && sound;
        points.push(PointRecord {
            profile: profile.to_string(),
            stream_hash: base_hash,
            events: rec.events.len(),
            nodes: graph.nodes(),
            raw_edges: graph.edges_of(DepKind::Raw).len(),
            war_edges: graph.edges_of(DepKind::War).len(),
            waw_edges: graph.edges_of(DepKind::Waw).len(),
            cycles: rec.cycles,
            tightness_pct: tightness_pct(lb.bound, rec.cycles),
            lb,
            invariant_under,
            invariant,
        });
    }

    let mut vl_equivalence = Vec::new();
    for (isa, runs) in &by_isa {
        for pair in runs.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            let detail = lo.1.diff(&hi.1);
            let equivalent = detail.is_none();
            if let Some(d) = &detail {
                findings.push(Finding {
                    pass: "vl-equivalence",
                    kernel: case.name.to_string(),
                    profile: format!("{} vs {}", lo.0, hi.0),
                    detail: format!("streams not equivalent modulo VL renaming: {d}"),
                });
            }
            vl_equivalence.push(VlEquivalence {
                isa,
                points: (lo.0.clone(), hi.0.clone()),
                equivalent,
                detail: detail.unwrap_or_default(),
            });
        }
    }

    let certified =
        points.iter().all(|p| p.invariant) && vl_equivalence.iter().all(|v| v.equivalent);
    (
        RetimeCertificate {
            kernel: case.name.to_string(),
            shape: case.shape.to_string(),
            points,
            vl_equivalence,
            certified,
        },
        findings,
    )
}

/// Pinpoint where a perturbed stream diverged from the baseline.
fn describe_variance(base: &[VecEvent], perturbed: &[VecEvent], which: &str) -> String {
    if base.len() != perturbed.len() {
        return format!(
            "stream length changed under {which}: {} events vs {}",
            base.len(),
            perturbed.len()
        );
    }
    for (i, (a, b)) in base.iter().zip(perturbed).enumerate() {
        if a != b {
            return format!("stream diverged under {which} at event #{i}: {} vs {}", a.op, b.op);
        }
    }
    format!("streams differ under {which} (hash mismatch)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vl_summary_projects_work_and_traffic() {
        let allocs = vec![AllocRecord {
            label: "x".to_string(),
            buf: lva_sim::Buf { base: 0x100, words: 64 },
        }];
        // One 64-element load split as 32+32 vs 48+16: same projection.
        let a = vec![
            VecEvent::load("vle", 1, 0x100, 0x180, 32),
            VecEvent::load("vle", 1, 0x180, 0x200, 32),
        ];
        let b = vec![
            VecEvent::load("vle", 1, 0x100, 0x1c0, 48),
            VecEvent::load("vle", 1, 0x1c0, 0x200, 16),
        ];
        let (sa, sb) = (VlSummary::build(&a, &allocs), VlSummary::build(&b, &allocs));
        assert_eq!(sa, sb);
        assert_eq!(sa.diff(&sb), None);
        assert_eq!(sa.op_work["vle"], 64);
        assert_eq!(sa.traffic["x"], (64, 0));
        // A third stream loading less is caught.
        let c = vec![VecEvent::load("vle", 1, 0x100, 0x180, 32)];
        let sc = VlSummary::build(&c, &allocs);
        assert_eq!(sa.diff(&sc), Some("op `vle` total active lanes 64 vs 32".to_string()));
    }
}
