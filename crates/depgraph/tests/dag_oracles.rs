//! Handcrafted event-stream oracles pinning the *exact* dependence edge
//! sets and critical-path structure `DepGraph::build` must produce.
//!
//! These are the ground truth the certifier and the lower bound stand on:
//! every hazard class (RAW/WAR/WAW), both carriers (register and memory
//! byte range), partial-overlap interval splitting, and the
//! accumulate-into-destination pattern (`vfmacc` reading its own output
//! register) are each pinned against a stream small enough to verify by
//! hand.

use lva_depgraph::{DepEdge, DepGraph, DepKind, Via};
use lva_isa::VecEvent;
use lva_sim::{AllocRecord, Buf};

fn edge(from: usize, to: usize, dep: DepKind, via: Via) -> DepEdge {
    DepEdge { from, to, dep, via }
}

#[test]
fn mixed_register_and_memory_hazards_pin_the_full_edge_set() {
    // node:        0             1             2              3             4             5
    // stream: setvl; vle v1 <- x; vle v2 <- x+; v3 = v1 * v2; vse v3 -> y; vle v1 <- y; vse v1 -> y
    let events = vec![
        VecEvent::grant("setvl", 16, 16), // not an op node
        VecEvent::load("vle", 1, 0x1000, 0x1040, 16),
        VecEvent::load("vle", 2, 0x1040, 0x1080, 16),
        VecEvent::arith("vfmul.vv", 3, [Some(1), Some(2), None], 16),
        VecEvent::store("vse", 3, 0x2000, 0x2040, 16),
        VecEvent::load("vle", 1, 0x2000, 0x2040, 16),
        VecEvent::store("vse", 1, 0x2000, 0x2040, 16),
    ];
    let g = DepGraph::build(&events, &[]);

    // The grant is excluded from the DAG; nodes map to stream indices 1..=6.
    assert_eq!(g.nodes(), 6);
    assert_eq!(g.node_events, vec![1, 2, 3, 4, 5, 6]);

    let expected = vec![
        edge(0, 2, DepKind::Raw, Via::Reg(1)), // v1 into the multiply
        edge(1, 2, DepKind::Raw, Via::Reg(2)), // v2 into the multiply
        edge(2, 3, DepKind::Raw, Via::Reg(3)), // product into the store
        edge(0, 4, DepKind::Waw, Via::Reg(1)), // reload redefines v1
        edge(2, 4, DepKind::War, Via::Reg(1)), // ... after the multiply read it
        edge(3, 4, DepKind::Raw, Via::Mem),    // reload reads the stored bytes
        edge(3, 5, DepKind::Waw, Via::Mem),    // final store overwrites them
        edge(4, 5, DepKind::Raw, Via::Reg(1)), // v1 into the final store
        edge(4, 5, DepKind::War, Via::Mem),    // ... which clobbers what node 4 read
    ];
    let mut want = expected;
    want.sort();
    assert_eq!(g.edges, want);

    // Unit edge weights: the longest chain is load -> mul -> store ->
    // reload -> store. The tie between the two loads resolves to node 0
    // (first relaxed wins strictly-greater updates).
    let (len, path) = g.longest_path(|_| 1, |_| 0);
    assert_eq!(len, 4);
    assert_eq!(path, vec![0, 2, 3, 4, 5]);
}

#[test]
fn partial_overlaps_split_memory_intervals() {
    let allocs = vec![AllocRecord {
        label: "x".to_string(),
        buf: Buf { base: 0x100, words: 64 }, // bytes [0x100, 0x200)
    }];
    // node 0 writes [0x100,0x180); node 1 reads [0x140,0x1c0) — the upper
    // half of the write plus 0x40 unwritten bytes; node 2 overwrites the
    // untouched lower half; node 3 overwrites across the read.
    let events = vec![
        VecEvent::store("vse", 1, 0x100, 0x180, 32),
        VecEvent::load("vle", 2, 0x140, 0x1c0, 32),
        VecEvent::store("vse", 3, 0x100, 0x140, 16),
        VecEvent::store("vse", 4, 0x160, 0x1a0, 16),
    ];
    let g = DepGraph::build(&events, &allocs);
    let expected = vec![
        edge(0, 1, DepKind::Raw, Via::Mem), // read of the written overlap
        edge(0, 2, DepKind::Waw, Via::Mem), // lower half overwritten, never read
        edge(0, 3, DepKind::Waw, Via::Mem), // [0x160,0x180) still node 0's bytes
        edge(1, 3, DepKind::War, Via::Mem), // node 1 read [0x160,0x1a0) first
    ];
    let mut want = expected;
    want.sort();
    assert_eq!(g.edges, want);
    // No WAR edge into node 2: node 1 never read [0x100,0x140).
    assert_eq!(g.edges_of(DepKind::War).len(), 1);
}

#[test]
fn accumulator_chains_serialize_without_self_edges() {
    // vfmacc reads its own destination: each accumulate depends on the
    // previous one (RAW + WAW on the accumulator) but must not generate a
    // self-edge, and the final reduction reads the accumulator.
    let events = vec![
        VecEvent::load("vle", 1, 0x100, 0x140, 16),
        VecEvent::arith("vfmacc.vv", 2, [Some(1), Some(2), None], 16),
        VecEvent::arith("vfmacc.vv", 2, [Some(1), Some(2), None], 16),
        VecEvent::reduce("vfredsum", 2, 16),
    ];
    let g = DepGraph::build(&events, &[]);
    let expected = vec![
        edge(0, 1, DepKind::Raw, Via::Reg(1)),
        edge(0, 2, DepKind::Raw, Via::Reg(1)),
        edge(1, 2, DepKind::Raw, Via::Reg(2)), // old accumulator value
        edge(1, 2, DepKind::Waw, Via::Reg(2)), // accumulator redefinition
        edge(2, 3, DepKind::Raw, Via::Reg(2)), // reduction reads the result
    ];
    let mut want = expected;
    want.sort();
    assert_eq!(g.edges, want);
    assert!(g.edges.iter().all(|e| e.from != e.to), "no self-edges");

    // The accumulator chain is the critical path.
    let (len, path) = g.longest_path(|_| 1, |_| 0);
    assert_eq!(len, 3);
    assert_eq!(path, vec![0, 1, 2, 3]);
}

#[test]
fn independent_streams_share_no_edges() {
    // Two disjoint load/compute/store pipelines: the DAG must be two
    // disconnected chains, so retiming may interleave them freely.
    let events = vec![
        VecEvent::load("vle", 1, 0x100, 0x140, 16),
        VecEvent::load("vle", 2, 0x200, 0x240, 16),
        VecEvent::arith("vfadd.vf", 3, [Some(1), None, None], 16),
        VecEvent::arith("vfadd.vf", 4, [Some(2), None, None], 16),
        VecEvent::store("vse", 3, 0x300, 0x340, 16),
        VecEvent::store("vse", 4, 0x400, 0x440, 16),
    ];
    let g = DepGraph::build(&events, &[]);
    let expected = vec![
        edge(0, 2, DepKind::Raw, Via::Reg(1)),
        edge(1, 3, DepKind::Raw, Via::Reg(2)),
        edge(2, 4, DepKind::Raw, Via::Reg(3)),
        edge(3, 5, DepKind::Raw, Via::Reg(4)),
    ];
    let mut want = expected;
    want.sort();
    assert_eq!(g.edges, want);
    let (len, _) = g.longest_path(|_| 1, |_| 0);
    assert_eq!(len, 2, "each chain is two edges long");
}
