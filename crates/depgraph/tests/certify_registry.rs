//! The acceptance gate over the real kernel registry: every registered
//! kernel carries a clean retime certificate, the critical-path lower
//! bound never exceeds the simulated cycle count, every lint finding is
//! explicitly allowlisted, and event recording itself is timing-neutral.

use lva_check::{record_kernel, registered_kernels, sweep_configs, KernelCase};
use lva_depgraph::{allowlisted, certify_kernel, lint_dataflow, lower_bound, DepGraph};
use lva_isa::{Machine, MachineConfig};

fn supported<'c>(
    case: &'c KernelCase,
    sweep: &'c [(&'static str, MachineConfig)],
) -> impl Iterator<Item = &'c (&'static str, MachineConfig)> {
    sweep.iter().filter(|(_, cfg)| case.supports(cfg.vpu.isa))
}

#[test]
fn every_registered_kernel_is_certified() {
    let sweep = sweep_configs();
    for case in registered_kernels() {
        let (cert, findings) = certify_kernel(&case, &sweep);
        assert!(findings.is_empty(), "{}: {findings:?}", case.name);
        assert!(cert.certified, "{} lost its retime certificate", case.name);
        assert_eq!(
            cert.points.len(),
            supported(&case, &sweep).count(),
            "{} must be certified at every supported design point",
            case.name
        );
        for p in &cert.points {
            assert!(p.invariant, "{} @ {}: stream not timing-invariant", case.name, p.profile);
        }
        for v in &cert.vl_equivalence {
            assert!(v.equivalent, "{} [{}]: VL renaming broken: {}", case.name, v.isa, v.detail);
        }
    }
}

#[test]
fn lower_bound_never_exceeds_simulated_cycles() {
    let sweep = sweep_configs();
    for case in registered_kernels() {
        for (profile, cfg) in supported(&case, &sweep) {
            let rec = record_kernel(&case, cfg);
            let graph = DepGraph::build(&rec.events, &rec.allocs);
            let lb = lower_bound(cfg, &rec.events, &graph);
            assert!(
                lb.bound <= rec.cycles,
                "{} @ {profile}: lower bound {} > simulated {}",
                case.name,
                lb.bound,
                rec.cycles
            );
            assert_eq!(lb.bound, lb.resource.max(lb.dependence));
            // The critical path must name real DAG nodes.
            assert!(lb.critical_path.iter().all(|&n| n < graph.nodes()));
        }
    }
}

#[test]
fn registry_lint_findings_are_all_allowlisted() {
    let sweep = sweep_configs();
    for case in registered_kernels() {
        for (profile, cfg) in supported(&case, &sweep) {
            let rec = record_kernel(&case, cfg);
            for f in lint_dataflow(case.name, profile, &rec.events, &rec.allocs) {
                assert!(
                    allowlisted(&f.kernel, f.pass).is_some(),
                    "new gating finding — fix the kernel or review it into the \
                     allowlist: {f:?}"
                );
            }
        }
    }
}

#[test]
fn event_recording_is_timing_neutral() {
    // The certifier's premise: turning the recorder on must not move a
    // single cycle, otherwise certificates describe a different machine
    // than the benchmarks run on.
    let sweep = sweep_configs();
    for case in registered_kernels() {
        for (profile, cfg) in supported(&case, &sweep) {
            let recorded = record_kernel(&case, cfg).cycles;
            let mut m = Machine::new(cfg.clone());
            (case.run)(&mut m);
            assert_eq!(
                m.cycles(),
                recorded,
                "{} @ {profile}: recording changed the cycle count",
                case.name
            );
        }
    }
}
