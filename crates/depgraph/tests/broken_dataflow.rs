//! Deliberately-broken synthetic kernels, one per analysis, pinning the
//! exact finding each pass must emit.
//!
//! `KernelCase` takes a plain fn pointer, so these build tiny kernels the
//! registry never ships: a reloading kernel for the redundant-load pass, a
//! clobbered store for the dead-store pass, a kernel whose stream depends
//! on the L2 capacity (breaking timing-invariance), and a kernel whose
//! element count scales with the hardware vector length (breaking
//! VL-renaming equivalence).

use lva_check::{record_kernel, sweep_configs, KernelCase};
use lva_depgraph::{certify_kernel, lint_dataflow};
use lva_isa::Machine;

fn synthetic(name: &'static str, run: fn(&mut Machine)) -> KernelCase {
    KernelCase { name, shape: "synthetic", isa: None, run }
}

// ---------------------------------------------------------------------
// redundant-load
// ---------------------------------------------------------------------

fn run_reloading(m: &mut Machine) {
    let x = m.mem.alloc_from(&[1.0; 16]);
    let out = m.mem.alloc_named("out", 16);
    let vl = m.setvl(16);
    m.vle(1, x.addr(0), vl);
    m.vle(2, x.addr(0), vl); // same bytes, still live in v1
    m.vfadd_vv(3, 1, 2, vl);
    m.vse(3, out.addr(0), vl);
}

#[test]
fn redundant_load_finding_pins_exact_text() {
    let case = synthetic("reloading", run_reloading);
    let (profile, cfg) = &sweep_configs()[0];
    let rec = record_kernel(&case, cfg);
    let findings = lint_dataflow(case.name, profile, &rec.events, &rec.allocs);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.pass, "redundant-load");
    // Stream: #0 setvl grant, #1 first vle, #2 the redundant reload.
    let x = &rec.allocs[0];
    assert_eq!(
        f.detail,
        format!(
            "event #2: vle v2 reloads [{:#x}, {:#x}) of `{}` already live in v1",
            x.buf.base,
            x.buf.base + 64,
            x.label,
        )
    );
}

// ---------------------------------------------------------------------
// dead-store
// ---------------------------------------------------------------------

fn run_clobbering(m: &mut Machine) {
    let x = m.mem.alloc_from(&[1.0; 16]);
    let out = m.mem.alloc_named("out", 16);
    let vl = m.setvl(16);
    m.vle(1, x.addr(0), vl);
    m.vse(1, out.addr(0), vl); // fully overwritten below, never read
    m.vfadd_vf(2, 1, 1.0, vl);
    m.vse(2, out.addr(0), vl);
}

#[test]
fn dead_store_finding_pins_exact_text() {
    let case = synthetic("clobbering", run_clobbering);
    let (profile, cfg) = &sweep_configs()[0];
    let rec = record_kernel(&case, cfg);
    let findings = lint_dataflow(case.name, profile, &rec.events, &rec.allocs);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.pass, "dead-store");
    // Stream: #0 setvl grant, #1 vle, #2 the doomed vse.
    let out = rec.allocs.iter().find(|a| a.label == "out").unwrap();
    assert_eq!(
        f.detail,
        format!(
            "event #2: vse to [{:#x}, {:#x}) of `out` is fully overwritten before any read",
            out.buf.base,
            out.buf.base + 64,
        )
    );
}

// ---------------------------------------------------------------------
// config-variance: the stream must not read timing state
// ---------------------------------------------------------------------

fn run_l2_dependent(m: &mut Machine) {
    let x = m.mem.alloc_from(&[1.0; 16]);
    let out = m.mem.alloc_named("out", 16);
    let vl = m.setvl(16);
    m.vle(1, x.addr(0), vl);
    // Forbidden: shape the stream by cache capacity. The l2-4MiB
    // perturbation flips this branch.
    if m.config().mem.l2.bytes > (2 << 20) {
        m.vfadd_vf(1, 1, 1.0, vl);
    }
    m.vse(1, out.addr(0), vl);
}

#[test]
fn l2_dependent_stream_fails_certification() {
    let case = synthetic("l2_dependent", run_l2_dependent);
    let sweep = sweep_configs();
    let (cert, findings) = certify_kernel(&case, &sweep);
    assert!(!cert.certified);
    // One config-variance finding per design point, naming the perturbation
    // and the event-count delta (the baseline stream has one fewer event).
    let variance: Vec<_> = findings.iter().filter(|f| f.pass == "config-variance").collect();
    assert_eq!(variance.len(), sweep.len(), "{findings:?}");
    let n = record_kernel(&case, &sweep[0].1).events.len();
    for f in &variance {
        assert_eq!(
            f.detail,
            format!("stream length changed under l2-4MiB: {n} events vs {}", n + 1)
        );
    }
    // Every point still reports which perturbations *did* hold.
    for p in &cert.points {
        assert!(!p.invariant);
        assert_eq!(p.invariant_under, vec!["lanes-halved", "reference-model", "ideal-all"]);
    }
}

// ---------------------------------------------------------------------
// vl-equivalence: element totals must not scale with the hardware VL
// ---------------------------------------------------------------------

fn run_vl_dependent(m: &mut Machine) {
    let x = m.mem.alloc_from(&[1.0; 512]);
    let out = m.mem.alloc_named("out", 512);
    // Forbidden: process "one register's worth" of data — the element
    // count then scales with the hardware vector length.
    let vl = m.setvl(m.vlen_elems());
    m.vle(1, x.addr(0), vl);
    m.vse(1, out.addr(0), vl);
}

#[test]
fn vl_dependent_stream_fails_renaming_equivalence() {
    let case = synthetic("vl_dependent", run_vl_dependent);
    let sweep = sweep_configs();
    let (cert, findings) = certify_kernel(&case, &sweep);
    assert!(!cert.certified);
    // Timing perturbations all hold — the breakage is purely across VLs.
    assert!(cert.points.iter().all(|p| p.invariant));
    let vl_findings: Vec<_> = findings.iter().filter(|f| f.pass == "vl-equivalence").collect();
    assert_eq!(vl_findings.len(), 2, "one per ISA pair: {findings:?}");
    let rvv = vl_findings.iter().find(|f| f.profile == "rvv/4096b vs rvv/16384b").unwrap();
    assert_eq!(
        rvv.detail,
        "streams not equivalent modulo VL renaming: op `vle` total active lanes 128 vs 512"
    );
    let sve = vl_findings.iter().find(|f| f.profile == "sve/512b vs sve/2048b").unwrap();
    assert_eq!(
        sve.detail,
        "streams not equivalent modulo VL renaming: op `vle` total active lanes 16 vs 64"
    );
    assert!(cert.vl_equivalence.iter().all(|v| !v.equivalent));
}
