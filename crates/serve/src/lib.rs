//! `lva-serve` — a deterministic discrete-event serving simulator with
//! request-level observability.
//!
//! The co-design study measures one inference at a time; a deployment
//! serves *traffic*. This crate layers a batching inference tier over the
//! calibrated per-model costs of the cycle-approximate simulator:
//!
//! * [`arrivals`] — seeded SplitMix64 Poisson (or explicit trace) request
//!   generation, merged across tenants under a total order;
//! * [`sim`] — the discrete-event engine: per-tenant FIFO queues, dynamic
//!   batching with deadline-aware admission, multi-model tenancy with
//!   measured tenant-switch (cold-cache) penalties;
//! * [`hist`] — HDR-style log-bucketed latency histograms (bounded
//!   relative quantile error, exact elementwise merge for shards);
//! * [`slo`] — p99 targets and deadline-miss error-budget burn.
//!
//! The only clock is the simulated-cycle clock. Nothing here reads host
//! time, so every histogram, queue counter, and Chrome timeline is a pure
//! function of (profiles, arrival seed, config) — byte-reproducible across
//! hosts and `--jobs` settings. The `exp-serve` binary in `lva-bench`
//! drives this over the Table II design points; DESIGN.md §16 documents
//! the model and its contracts.

#![forbid(unsafe_code)]

pub mod arrivals;
pub mod hist;
pub mod sim;
pub mod slo;
pub mod tenancy;

pub use arrivals::{merge_arrivals, poisson_arrivals, trace_arrivals, Request};
pub use hist::{LatencyHistogram, MAX_REL_ERROR};
pub use sim::{
    chrome_trace, queue_stats_json, simulate, tenant_stats_json, BatchRecord, QueueStats,
    RequestRecord, ServeConfig, SimResult, TenantProfile, TenantStats,
};
pub use slo::{evaluate, SloOutcome, SloPolicy};
pub use tenancy::{default_mix, TenantSpec};

/// Convert simulated cycles to milliseconds at `freq_ghz`.
pub fn cycles_to_ms(cycles: u64, freq_ghz: f64) -> f64 {
    cycles as f64 / (freq_ghz * 1e6)
}

/// Convert milliseconds to simulated cycles at `freq_ghz` (rounded).
pub fn ms_to_cycles(ms: f64, freq_ghz: f64) -> u64 {
    (ms * freq_ghz * 1e6).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_ms_conversion_round_trips() {
        assert_eq!(cycles_to_ms(2_000_000, 2.0), 1.0);
        assert_eq!(ms_to_cycles(1.0, 2.0), 2_000_000);
        let cycles = 123_456_789u64;
        let back = ms_to_cycles(cycles_to_ms(cycles, 2.0), 2.0);
        assert_eq!(back, cycles);
    }
}
