//! Deterministic request generation.
//!
//! Two sources, both clocked purely in simulated cycles:
//!
//! * **Poisson** — inter-arrival gaps sampled from an exponential
//!   distribution via the in-tree SplitMix64 ([`lva_sim::Rng`]), the
//!   standard open-loop traffic model. Same seed ⇒ bit-identical stream on
//!   every host and thread count.
//! * **Trace** — an explicit list of arrival cycles (replayed load tests,
//!   adversarial bursts in unit tests).
//!
//! Streams from several tenants merge into one global arrival order with a
//! total tie-break (cycle, then tenant, then per-tenant sequence number),
//! so the simulator never depends on sort stability or map iteration order.

use lva_sim::Rng;

/// One inference request against a tenant's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Index into the simulation's tenant table.
    pub tenant: usize,
    /// Per-tenant sequence number (0-based, in arrival order).
    pub seq: u64,
    /// Arrival cycle.
    pub arrive: u64,
    /// Absolute deadline cycle: completing after this is a deadline miss.
    pub deadline: u64,
}

/// Sample `n` Poisson arrivals for `tenant`: exponential gaps with the
/// given mean (cycles), each request carrying `arrive + deadline_cycles`
/// as its absolute deadline. Gaps round up to at least one cycle.
pub fn poisson_arrivals(
    seed: u64,
    tenant: usize,
    mean_gap_cycles: f64,
    n: usize,
    deadline_cycles: u64,
) -> Vec<Request> {
    assert!(mean_gap_cycles > 0.0, "mean inter-arrival must be positive");
    let mut rng = Rng::new(seed);
    let mut t = 0u64;
    (0..n)
        .map(|seq| {
            // Inverse-CDF exponential; 1 - u is in (0, 1], so ln is finite.
            let gap = -(1.0 - rng.next_f64()).ln() * mean_gap_cycles;
            t += (gap.ceil() as u64).max(1);
            Request { tenant, seq: seq as u64, arrive: t, deadline: t + deadline_cycles }
        })
        .collect()
}

/// Wrap an explicit arrival-cycle trace (must be non-decreasing) for
/// `tenant`, applying one relative deadline to every request.
pub fn trace_arrivals(tenant: usize, arrive_cycles: &[u64], deadline_cycles: u64) -> Vec<Request> {
    assert!(arrive_cycles.windows(2).all(|w| w[0] <= w[1]), "trace must be sorted");
    arrive_cycles
        .iter()
        .enumerate()
        .map(|(seq, &t)| Request {
            tenant,
            seq: seq as u64,
            arrive: t,
            deadline: t + deadline_cycles,
        })
        .collect()
}

/// Merge per-tenant streams into one globally ordered arrival sequence.
/// The order is total — (arrive, tenant, seq) — so it is independent of
/// the order the streams are passed in.
pub fn merge_arrivals(streams: &[Vec<Request>]) -> Vec<Request> {
    let mut all: Vec<Request> = streams.iter().flatten().copied().collect();
    all.sort_by_key(|r| (r.arrive, r.tenant, r.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_has_the_requested_mean() {
        let a = poisson_arrivals(7, 0, 1000.0, 4000, 5000);
        let b = poisson_arrivals(7, 0, 1000.0, 4000, 5000);
        assert_eq!(a, b, "same seed, same stream");
        let c = poisson_arrivals(8, 0, 1000.0, 4000, 5000);
        assert_ne!(a, c, "different seed, different stream");
        // Sample mean of the gaps is near the requested mean (4000 draws:
        // the standard error is mean/sqrt(n) ≈ 1.6%).
        let mean = a.last().unwrap().arrive as f64 / a.len() as f64;
        assert!((mean - 1000.0).abs() < 100.0, "sample mean {mean}");
        // Strictly increasing (gaps clamp to >= 1) and deadlines offset.
        assert!(a.windows(2).all(|w| w[0].arrive < w[1].arrive));
        assert!(a.iter().all(|r| r.deadline == r.arrive + 5000));
    }

    #[test]
    fn merge_order_is_total_and_input_order_independent() {
        let a = poisson_arrivals(1, 0, 500.0, 200, 1000);
        let b = poisson_arrivals(2, 1, 800.0, 150, 1000);
        let c = trace_arrivals(2, &[10, 10, 700], 1000);
        let x = merge_arrivals(&[a.clone(), b.clone(), c.clone()]);
        let y = merge_arrivals(&[c, b, a]);
        assert_eq!(x, y);
        assert!(x.windows(2).all(|w| {
            (w[0].arrive, w[0].tenant, w[0].seq) < (w[1].arrive, w[1].tenant, w[1].seq)
        }));
    }
}
