//! SLO accounting: latency targets and error-budget burn.
//!
//! Semantics (DESIGN.md §16): a tenant's SLO has two parts —
//!
//! * a **p99 latency target** in milliseconds: met iff the measured p99
//!   over completed requests is at or under the target;
//! * a **deadline-miss error budget**: the fraction of offered requests
//!   allowed to miss their deadline (shed or completed late). The **burn**
//!   is `miss_fraction / budget_fraction` — burn 1.0 means the budget is
//!   exactly spent, above 1.0 the SLO is violated. Burn is the standard
//!   SRE framing: it composes across windows and reads the same at every
//!   traffic level.
//!
//! Both are pure functions of the simulation's own histograms and
//! counters, so the monitor is as deterministic as the simulator.

use crate::sim::TenantStats;
use lva_trace::Json;

/// Per-tenant service-level objective.
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// p99 latency target (milliseconds).
    pub target_p99_ms: f64,
    /// Allowed deadline-miss fraction of offered requests (e.g. 0.05).
    pub miss_budget_frac: f64,
}

/// Evaluated SLO state for one tenant over one run.
#[derive(Debug, Clone, Copy)]
pub struct SloOutcome {
    pub target_p99_ms: f64,
    pub p99_ms: f64,
    /// p99 at or under target.
    pub p99_met: bool,
    pub miss_frac: f64,
    /// `miss_frac / miss_budget_frac`; > 1.0 means the budget is blown.
    pub budget_burn: f64,
}

/// Evaluate a tenant's stats against its SLO. Latencies are converted from
/// cycles at `freq_ghz`.
pub fn evaluate(stats: &TenantStats, policy: &SloPolicy, freq_ghz: f64) -> SloOutcome {
    assert!(policy.miss_budget_frac > 0.0, "a zero miss budget makes burn undefined");
    let p99_ms = stats.latency.percentile(0.99) as f64 / (freq_ghz * 1e6);
    let miss_frac = if stats.offered == 0 {
        0.0
    } else {
        stats.deadline_misses() as f64 / stats.offered as f64
    };
    SloOutcome {
        target_p99_ms: policy.target_p99_ms,
        p99_ms,
        p99_met: p99_ms <= policy.target_p99_ms,
        miss_frac,
        budget_burn: miss_frac / policy.miss_budget_frac,
    }
}

impl SloOutcome {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("target_p99_ms", self.target_p99_ms)
            .field("p99_ms", self.p99_ms)
            .field("p99_met", self.p99_met)
            .field("miss_frac", self.miss_frac)
            .field("budget_burn", self.budget_burn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::trace_arrivals;
    use crate::sim::{simulate, ServeConfig, TenantProfile};

    #[test]
    fn burn_tracks_miss_fraction_and_p99_gate() {
        // Ten requests, service 100 cycles each, deadline 150 cycles:
        // request k completes at (k+1)*100, so 2..10 miss (8 of 10 = 80%).
        let arr = trace_arrivals(0, &[0; 10], 150);
        let r = simulate(
            &[TenantProfile { cold_cycles: 100, steady_cycles: 100 }],
            &arr,
            &ServeConfig { max_batch: 1 },
        );
        let st = &r.tenants[0];
        // Four execute before the rest go hopeless and shed at formation.
        assert_eq!(st.completed + st.shed, 10);
        let misses = st.deadline_misses();
        let policy = SloPolicy { target_p99_ms: 1.0, miss_budget_frac: 0.05 };
        let o = evaluate(st, &policy, 2.0);
        assert!((o.miss_frac - misses as f64 / 10.0).abs() < 1e-12);
        assert!((o.budget_burn - o.miss_frac / 0.05).abs() < 1e-12);
        assert!(o.budget_burn > 1.0, "80% misses blow a 5% budget");
        // At 2 GHz, 1000 cycles = 0.5 µs — far under a 1 ms target.
        assert!(o.p99_met);
        let tight = SloPolicy { target_p99_ms: 1e-9, miss_budget_frac: 0.05 };
        assert!(!evaluate(st, &tight, 2.0).p99_met);
        // Round-trips through JSON.
        let j = o.to_json();
        assert_eq!(j.get("p99_met").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("budget_burn").and_then(Json::as_f64), Some(o.budget_burn));
    }

    #[test]
    fn zero_traffic_burns_nothing() {
        let st = {
            let r = simulate(
                &[TenantProfile { cold_cycles: 1, steady_cycles: 1 }],
                &[],
                &ServeConfig::default(),
            );
            r.tenants[0].clone()
        };
        let o = evaluate(&st, &SloPolicy { target_p99_ms: 1.0, miss_budget_frac: 0.01 }, 2.0);
        assert_eq!(o.miss_frac, 0.0);
        assert_eq!(o.budget_burn, 0.0);
        assert!(o.p99_met);
    }
}
