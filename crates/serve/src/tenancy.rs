//! Multi-model tenancy: which models share the simulated machine, with
//! what traffic share and what deadline policy.
//!
//! A [`TenantSpec`] is deployment configuration, not measurement — the
//! per-tenant execution *costs* come from calibrating the real simulator
//! (`Experiment::run_stream`) and enter the engine as
//! [`crate::sim::TenantProfile`]s. Deadlines are expressed relative to the
//! tenant's own steady-state service time on a reference design point, so
//! one mix definition scales coherently across `--div` settings and
//! hardware ladders.

use lva_nn::ModelId;

/// One tenant of the serving tier.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    pub model: ModelId,
    /// Share of the offered traffic (the mix normalizes over all tenants).
    pub weight: f64,
    /// Relative deadline: a request must complete within
    /// `deadline_mult × steady_cycles(reference point)` of its arrival.
    pub deadline_mult: f64,
    /// Allowed deadline-miss fraction (the SLO error budget).
    pub miss_budget_frac: f64,
}

impl TenantSpec {
    /// Stable tenant name (the model's slug).
    pub fn name(&self) -> &'static str {
        self.model.slug()
    }
}

/// The paper-model serving mix: an interactive detector (YOLOv3-tiny)
/// carrying most of the traffic with a tight deadline, the full YOLOv3
/// as the heavy minority tenant, and VGG16 classification in between.
pub fn default_mix() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            model: ModelId::Yolov3Tiny,
            weight: 0.5,
            deadline_mult: 8.0,
            miss_budget_frac: 0.05,
        },
        TenantSpec {
            model: ModelId::Yolov3,
            weight: 0.2,
            deadline_mult: 10.0,
            miss_budget_frac: 0.05,
        },
        TenantSpec {
            model: ModelId::Vgg16,
            weight: 0.3,
            deadline_mult: 8.0,
            miss_budget_frac: 0.05,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_normalized_and_uniquely_named() {
        let mix = default_mix();
        assert_eq!(mix.len(), 3);
        let total: f64 = mix.iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mut names: Vec<&str> = mix.iter().map(TenantSpec::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3);
        assert!(mix.iter().all(|t| t.deadline_mult > 1.0 && t.miss_budget_frac > 0.0));
    }
}
