//! The discrete-event batching simulator.
//!
//! One simulated machine time-shares several model tenants. Requests enter
//! per-tenant FIFO queues at their arrival cycle; whenever the machine is
//! free it forms a batch from the tenant whose head request has waited
//! longest (FIFO across tenants), after shedding every queued request whose
//! deadline has already passed (deadline-aware admission: work that cannot
//! possibly finish in time never reaches the machine). The batch executes
//! for a cost given by the per-tenant calibration profile:
//!
//! ```text
//! batch_cycles(tenant, b) = first + (b - 1) · steady
//!   where first = cold   if the previous batch ran a different tenant
//!                 steady otherwise
//! ```
//!
//! `cold`/`steady` come from a two-frame `Experiment::run_stream` on the
//! real simulator, so a tenant switch pays the measured cold-cache penalty
//! and within-batch frames pay the measured warm cost — the serving tier
//! is a queueing model *calibrated by* the cycle-approximate machine, not
//! a new timing model.
//!
//! Everything is clocked in simulated cycles; the simulator never reads a
//! wall clock, so results are byte-reproducible. Observability is the
//! point: per-request lifecycle records (arrive → batch → execute →
//! complete, emitted through `lva-trace` when a sink is installed),
//! per-tenant latency histograms and deadline accounting, queue-depth
//! telemetry, and a Chrome-trace export with counter tracks.

use std::collections::VecDeque;

use lva_trace::{ChromeTrace, Json};

use crate::arrivals::Request;
use crate::hist::LatencyHistogram;

/// Calibrated execution profile of one tenant on the simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct TenantProfile {
    /// Cycles for a frame on cold caches (first frame after a tenant
    /// switch).
    pub cold_cycles: u64,
    /// Cycles for a steady-state (warm) frame.
    pub steady_cycles: u64,
}

impl TenantProfile {
    /// Cost of a `b`-request batch, given whether the machine last ran a
    /// different tenant.
    pub fn batch_cycles(&self, b: usize, switched: bool) -> u64 {
        assert!(b >= 1);
        let first = if switched { self.cold_cycles } else { self.steady_cycles };
        first + (b as u64 - 1) * self.steady_cycles
    }
}

/// Batching-queue policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum requests per batch (dynamic batching takes whatever is
    /// queued for the chosen tenant, up to this).
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch: 8 }
    }
}

/// Lifecycle of one completed request (shed requests never execute and are
/// only counted).
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    pub tenant: usize,
    pub arrive: u64,
    /// Cycle the batch containing this request started executing.
    pub start: u64,
    pub complete: u64,
    pub deadline: u64,
}

impl RequestRecord {
    pub fn latency(&self) -> u64 {
        self.complete - self.arrive
    }

    pub fn missed_deadline(&self) -> bool {
        self.complete > self.deadline
    }
}

/// One executed batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchRecord {
    pub tenant: usize,
    pub size: usize,
    pub start: u64,
    pub end: u64,
    /// True if this batch paid the tenant-switch (cold) cost.
    pub switched: bool,
}

/// Per-tenant accounting over one simulation.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Requests that arrived.
    pub offered: u64,
    /// Requests that executed and completed (on time or late).
    pub completed: u64,
    /// Requests shed at batch formation because their deadline had passed.
    pub shed: u64,
    /// Completed requests that finished on time (`goodput`).
    pub on_time: u64,
    /// Latency histogram over completed requests (cycles).
    pub latency: LatencyHistogram,
}

impl TenantStats {
    fn new() -> Self {
        TenantStats {
            offered: 0,
            completed: 0,
            shed: 0,
            on_time: 0,
            latency: LatencyHistogram::new(),
        }
    }

    /// Deadline misses: shed requests plus completed-but-late ones.
    pub fn deadline_misses(&self) -> u64 {
        self.shed + (self.completed - self.on_time)
    }
}

/// Queue/machine telemetry over one simulation.
#[derive(Debug, Clone)]
pub struct QueueStats {
    pub batches: u64,
    /// Batches that paid the tenant-switch penalty.
    pub switches: u64,
    /// Largest total queue depth observed (sampled at arrivals and batch
    /// formations).
    pub max_depth: u64,
    /// Time-weighted mean queue depth over the makespan.
    pub avg_depth: f64,
    pub max_batch: u64,
    pub avg_batch: f64,
    /// Cycles the machine spent executing batches.
    pub busy_cycles: u64,
    /// Cycle the last batch completed (0 if nothing ran).
    pub makespan: u64,
}

impl QueueStats {
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.makespan as f64
        }
    }
}

/// Everything one simulation measured.
#[derive(Debug, Clone)]
pub struct SimResult {
    pub tenants: Vec<TenantStats>,
    pub queue: QueueStats,
    pub batches: Vec<BatchRecord>,
    pub completed: Vec<RequestRecord>,
    /// `(cycle, tenant, arrive)` of every shed request, in shed order.
    pub shed: Vec<(u64, usize, u64)>,
}

/// Run the discrete-event simulation: `arrivals` must be globally sorted
/// (see [`crate::arrivals::merge_arrivals`]); `profiles[t]` calibrates
/// tenant `t`.
pub fn simulate(profiles: &[TenantProfile], arrivals: &[Request], cfg: &ServeConfig) -> SimResult {
    assert!(cfg.max_batch >= 1, "need at least single-request batches");
    assert!(arrivals.iter().all(|r| r.tenant < profiles.len()), "request names an unknown tenant");
    let _span = lva_trace::span("serve.simulate");
    let nt = profiles.len();
    let mut queues: Vec<VecDeque<Request>> = (0..nt).map(|_| VecDeque::new()).collect();
    let mut tenants: Vec<TenantStats> = (0..nt).map(|_| TenantStats::new()).collect();
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut completed: Vec<RequestRecord> = Vec::new();
    let mut shed: Vec<(u64, usize, u64)> = Vec::new();

    let mut next = 0usize; // next arrival to admit
    let mut now = 0u64; // machine-free cycle
    let mut last_tenant: Option<usize> = None;
    let mut busy = 0u64;

    loop {
        // Admit everything that has arrived by `now`.
        while next < arrivals.len() && arrivals[next].arrive <= now {
            let r = arrivals[next];
            tenants[r.tenant].offered += 1;
            queues[r.tenant].push_back(r);
            next += 1;
        }
        if queues.iter().all(VecDeque::is_empty) {
            if next >= arrivals.len() {
                break; // drained
            }
            // Idle until the next arrival.
            now = arrivals[next].arrive;
            continue;
        }

        // Deadline-aware admission: at batch formation, shed every queued
        // request that is already past its deadline — executing it could
        // only make every other request later.
        for (t, q) in queues.iter_mut().enumerate() {
            while let Some(head) = q.front() {
                if head.deadline > now {
                    break;
                }
                let r = *head;
                q.pop_front();
                tenants[t].shed += 1;
                shed.push((now, t, r.arrive));
                lva_trace::event(
                    "serve.shed",
                    Json::obj()
                        .field("tenant", t as u64)
                        .field("arrive", r.arrive)
                        .field("deadline", r.deadline)
                        .field("shed_at", now),
                );
            }
        }
        if queues.iter().all(VecDeque::is_empty) {
            continue; // everything queued was hopeless; re-admit/idle
        }

        // FIFO across tenants: serve the tenant whose head has waited
        // longest (ties break on the lower tenant index — total order).
        let pick = queues
            .iter()
            .enumerate()
            .filter_map(|(t, q)| q.front().map(|r| (r.arrive, t)))
            .min()
            .map(|(_, t)| t)
            .expect("some queue is non-empty");

        // Dynamic batching: take the whole queue, capped.
        let b = queues[pick].len().min(cfg.max_batch);
        let switched = last_tenant != Some(pick);
        let cost = profiles[pick].batch_cycles(b, switched);
        let start = now;
        let end = start + cost;
        for _ in 0..b {
            let r = queues[pick].pop_front().expect("batch within queue length");
            let rec = RequestRecord {
                tenant: pick,
                arrive: r.arrive,
                start,
                complete: end,
                deadline: r.deadline,
            };
            let st = &mut tenants[pick];
            st.completed += 1;
            if !rec.missed_deadline() {
                st.on_time += 1;
            }
            st.latency.record(rec.latency());
            completed.push(rec);
            lva_trace::event(
                "serve.request",
                Json::obj()
                    .field("tenant", pick as u64)
                    .field("arrive", rec.arrive)
                    .field("start", rec.start)
                    .field("complete", rec.complete)
                    .field("latency", rec.latency())
                    .field("missed", rec.missed_deadline()),
            );
        }
        batches.push(BatchRecord { tenant: pick, size: b, start, end, switched });
        busy += cost;
        last_tenant = Some(pick);
        now = end;
    }

    let queue = queue_stats(&batches, &completed, &shed, busy);
    SimResult { tenants, queue, batches, completed, shed }
}

/// Reconstruct the queue-depth timeline from the event log: +1 at each
/// arrival, −1 when a request leaves the queue (batch start or shed).
/// Returns the `(cycle, depth)` samples at every change point (one sample
/// per cycle, the end-of-cycle value — what a counter track renders) plus
/// the running peak depth, which can exceed every sample when arrivals and
/// a batch formation share a cycle.
fn depth_timeline(
    completed: &[RequestRecord],
    shed: &[(u64, usize, u64)],
) -> (Vec<(u64, u64)>, u64) {
    // A request that arrives and is batched at the same cycle must count
    // in, then out: encode arrivals with phase 0 and departures with
    // phase 1, and sort on (cycle, phase).
    let mut deltas: Vec<(u64, u8, i64)> = Vec::with_capacity(2 * (completed.len() + shed.len()));
    for r in completed {
        deltas.push((r.arrive, 0, 1));
        deltas.push((r.start, 1, -1));
    }
    for &(at, _, arrive) in shed {
        deltas.push((arrive, 0, 1));
        deltas.push((at, 1, -1));
    }
    deltas.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    let mut depth = 0i64;
    let mut peak = 0u64;
    for (cycle, _, d) in deltas {
        depth += d;
        debug_assert!(depth >= 0);
        peak = peak.max(depth as u64);
        match out.last_mut() {
            Some((c, v)) if *c == cycle => *v = depth as u64,
            _ => out.push((cycle, depth as u64)),
        }
    }
    (out, peak)
}

fn queue_stats(
    batches: &[BatchRecord],
    completed: &[RequestRecord],
    shed: &[(u64, usize, u64)],
    busy: u64,
) -> QueueStats {
    let (timeline, max_depth) = depth_timeline(completed, shed);
    let makespan = batches.last().map_or(0, |b| b.end);
    let mut area = 0u128;
    for w in timeline.windows(2) {
        area += (w[0].1 as u128) * (w[1].0 - w[0].0) as u128;
    }
    let avg_depth = if makespan == 0 { 0.0 } else { area as f64 / makespan as f64 };
    let sizes: Vec<u64> = batches.iter().map(|b| b.size as u64).collect();
    let nb = batches.len() as u64;
    QueueStats {
        batches: nb,
        switches: batches.iter().filter(|b| b.switched).count() as u64,
        max_depth,
        avg_depth,
        max_batch: sizes.iter().copied().max().unwrap_or(0),
        avg_batch: if nb == 0 { 0.0 } else { sizes.iter().sum::<u64>() as f64 / nb as f64 },
        busy_cycles: busy,
        makespan,
    }
}

/// Cap on per-request timeline events per tenant track, keeping full-sweep
/// exports Perfetto-sized (the counter tracks are never truncated).
const CHROME_MAX_REQS_PER_TENANT: usize = 2000;

/// Render the simulation as a Chrome trace: one `machine` track of batch
/// executions, one request track per tenant (arrive → complete spans,
/// truncated after [`CHROME_MAX_REQS_PER_TENANT`] per tenant), and
/// `queue_depth` / `batch_size` counter tracks.
pub fn chrome_trace(r: &SimResult, tenant_names: &[&str]) -> ChromeTrace {
    let mut t = ChromeTrace::new();
    t.note("source", "lva-serve discrete-event simulation");
    for b in &r.batches {
        let name = format!(
            "{}×{}{}",
            tenant_names.get(b.tenant).copied().unwrap_or("?"),
            b.size,
            if b.switched { " (switch)" } else { "" }
        );
        t.complete("machine", &name, b.start, b.end - b.start);
        t.counter("batch_size", "size", b.start, b.size as f64);
        t.counter("batch_size", "size", b.end, 0.0);
    }
    for (cycle, depth) in depth_timeline(&r.completed, &r.shed).0 {
        t.counter("queue_depth", "depth", cycle, depth as f64);
    }
    let mut per_tenant = vec![0usize; r.tenants.len()];
    let mut truncated = 0usize;
    for req in &r.completed {
        let n = &mut per_tenant[req.tenant];
        if *n >= CHROME_MAX_REQS_PER_TENANT {
            truncated += 1;
            continue;
        }
        *n += 1;
        let track = format!("req:{}", tenant_names.get(req.tenant).copied().unwrap_or("?"));
        let name = if req.missed_deadline() { "request (late)" } else { "request" };
        t.complete(&track, name, req.arrive, req.latency());
    }
    if truncated > 0 {
        t.note("truncated_request_spans", &truncated.to_string());
    }
    t
}

/// Serialize per-tenant stats with latencies converted to milliseconds at
/// `freq_ghz` (`ms = cycles / (freq_ghz · 1e6)`).
pub fn tenant_stats_json(s: &TenantStats, freq_ghz: f64) -> Json {
    let ms = |cycles: u64| cycles as f64 / (freq_ghz * 1e6);
    Json::obj()
        .field("offered", s.offered)
        .field("completed", s.completed)
        .field("shed", s.shed)
        .field("on_time", s.on_time)
        .field("deadline_misses", s.deadline_misses())
        .field("mean_ms", s.latency.mean() / (freq_ghz * 1e6))
        .field("p50_ms", ms(s.latency.percentile(0.50)))
        .field("p95_ms", ms(s.latency.percentile(0.95)))
        .field("p99_ms", ms(s.latency.percentile(0.99)))
        .field("p999_ms", ms(s.latency.percentile(0.999)))
        .field("max_ms", ms(s.latency.max()))
}

/// Serialize the queue telemetry.
pub fn queue_stats_json(q: &QueueStats) -> Json {
    Json::obj()
        .field("batches", q.batches)
        .field("switches", q.switches)
        .field("max_depth", q.max_depth)
        .field("avg_depth", q.avg_depth)
        .field("max_batch", q.max_batch)
        .field("avg_batch", q.avg_batch)
        .field("busy_cycles", q.busy_cycles)
        .field("makespan", q.makespan)
        .field("utilization", q.utilization())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{merge_arrivals, poisson_arrivals, trace_arrivals};

    fn profile(cold: u64, steady: u64) -> TenantProfile {
        TenantProfile { cold_cycles: cold, steady_cycles: steady }
    }

    #[test]
    fn single_tenant_back_to_back_batches() {
        // Two requests at cycle 0 and 1, machine takes 100 cold / 50 warm.
        let arr = trace_arrivals(0, &[0, 1], 10_000);
        let r = simulate(&[profile(100, 50)], &arr, &ServeConfig { max_batch: 8 });
        // Request 0 forms a size-1 batch at cycle 0 (cold): done at 100.
        // Request 1 (arrived at 1) batches next (warm): done at 150.
        assert_eq!(r.batches.len(), 2);
        assert_eq!(r.batches[0].end, 100);
        assert!(r.batches[0].switched);
        assert_eq!(r.batches[1].end, 150);
        assert!(!r.batches[1].switched);
        assert_eq!(r.tenants[0].completed, 2);
        assert_eq!(r.tenants[0].deadline_misses(), 0);
        assert_eq!(r.queue.busy_cycles, 150);
        assert_eq!(r.queue.makespan, 150);
        assert_eq!(r.queue.utilization(), 1.0);
    }

    #[test]
    fn queued_burst_batches_together() {
        // Ten requests at cycle 0; max_batch 4 → batches of 4, 4, 2.
        let arr = trace_arrivals(0, &[0; 10], 1_000_000);
        let r = simulate(&[profile(100, 50)], &arr, &ServeConfig { max_batch: 4 });
        let sizes: Vec<usize> = r.batches.iter().map(|b| b.size).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        // Cost: (100+3·50) + (50+3·50) + (50+50) = 250 + 200 + 100.
        assert_eq!(r.queue.makespan, 550);
        assert_eq!(r.queue.max_depth, 10);
        assert_eq!(r.tenants[0].completed, 10);
    }

    #[test]
    fn tenant_switch_pays_cold_cost_and_fifo_is_cross_tenant() {
        let a = trace_arrivals(0, &[0], 100_000);
        let b = trace_arrivals(1, &[5], 100_000);
        let arr = merge_arrivals(&[a, b]);
        let r = simulate(&[profile(100, 50), profile(300, 80)], &arr, &ServeConfig::default());
        assert_eq!(r.batches[0].tenant, 0, "earliest head goes first");
        assert_eq!(r.batches[0].end, 100);
        assert_eq!(r.batches[1].tenant, 1);
        assert!(r.batches[1].switched);
        assert_eq!(r.batches[1].end, 100 + 300);
        assert_eq!(r.queue.switches, 2);
    }

    #[test]
    fn hopeless_requests_are_shed_not_executed() {
        // Deadline 10 cycles; service takes 100. The first request occupies
        // the machine until 100, by which time the second (deadline 15) is
        // hopeless and must be shed, not executed.
        let arr = trace_arrivals(0, &[0, 5], 10);
        let r = simulate(&[profile(100, 100)], &arr, &ServeConfig { max_batch: 1 });
        assert_eq!(r.tenants[0].completed, 1);
        assert_eq!(r.tenants[0].shed, 1);
        // The executed one still missed its deadline (completed at 100 > 10).
        assert_eq!(r.tenants[0].on_time, 0);
        assert_eq!(r.tenants[0].deadline_misses(), 2);
        assert_eq!(r.shed.len(), 1);
        assert_eq!(r.shed[0], (100, 0, 5));
    }

    #[test]
    fn conservation_and_determinism_under_poisson_load() {
        let profiles = [profile(900, 400), profile(2500, 1200)];
        let arr = merge_arrivals(&[
            poisson_arrivals(11, 0, 700.0, 500, 20_000),
            poisson_arrivals(12, 1, 2000.0, 200, 60_000),
        ]);
        let run = || simulate(&profiles, &arr, &ServeConfig { max_batch: 6 });
        let r = run();
        for (t, st) in r.tenants.iter().enumerate() {
            assert_eq!(st.offered, st.completed + st.shed, "tenant {t} conserves requests");
            assert_eq!(st.latency.count(), st.completed);
        }
        let total: u64 = r.tenants.iter().map(|t| t.offered).sum();
        assert_eq!(total, 700);
        assert!(r.queue.utilization() > 0.5, "this load keeps the machine busy");
        // Bit-identical on re-run (no hidden host state).
        let r2 = run();
        assert_eq!(r.queue.makespan, r2.queue.makespan);
        assert_eq!(r.tenants[0].latency, r2.tenants[0].latency);
        assert_eq!(r.batches.len(), r2.batches.len());
    }

    #[test]
    fn chrome_export_is_well_formed_with_counter_tracks() {
        let arr = merge_arrivals(&[
            poisson_arrivals(3, 0, 500.0, 120, 30_000),
            poisson_arrivals(4, 1, 900.0, 60, 30_000),
        ]);
        let r =
            simulate(&[profile(800, 300), profile(1500, 700)], &arr, &ServeConfig { max_batch: 4 });
        let t = chrome_trace(&r, &["tiny", "vgg16"]);
        assert_eq!(t.validate(), Ok(()));
        let j = t.to_json();
        let evs = j.get("traceEvents").and_then(Json::as_arr).expect("events");
        let counters =
            evs.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("C")).count();
        assert!(counters > 0, "queue_depth/batch_size counter events present");
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
            .collect();
        for track in ["machine", "queue_depth", "batch_size", "req:tiny", "req:vgg16"] {
            assert!(names.contains(&track), "missing track {track}");
        }
    }

    #[test]
    fn lifecycle_events_flow_through_lva_trace() {
        lva_trace::enable_to_memory();
        let arr = trace_arrivals(0, &[0, 5], 10);
        let _ = simulate(&[profile(100, 100)], &arr, &ServeConfig { max_batch: 1 });
        let lines = lva_trace::take_memory();
        let text = lines.join("\n");
        assert!(text.contains("serve.request"), "completed-request event emitted");
        assert!(text.contains("serve.shed"), "shed event emitted");
        assert!(text.contains("serve.simulate"), "simulation span emitted");
    }
}
