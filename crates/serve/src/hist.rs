//! HDR-style log-bucketed latency histogram.
//!
//! Latencies in a serving simulation span five orders of magnitude (a warm
//! single-request batch on a fat design point vs. a deadline-grazing queue
//! wait under overload), so a linear histogram is either huge or useless.
//! This is the standard HdrHistogram compromise: values below [`SUB`] get
//! exact unit buckets; above that, each power-of-two octave is split into
//! [`SUB`] linear sub-buckets, so the bucket width — and therefore the
//! quantile error — is bounded *relative* to the value:
//!
//! > for any recorded value `v`, the bucket containing `v` has
//! > `lower <= v < lower + width` with `width <= lower / SUB`, so a
//! > quantile answered as the bucket's lower bound is exact for `v < 2·SUB`
//! > and within a relative error of [`MAX_REL_ERROR`] `= 1/SUB` everywhere.
//!
//! Counts are plain `u64`s in a fixed-size array, so two histograms built
//! on different `parallel_map` workers merge by elementwise addition —
//! `merge(a, b)` is *exactly* the histogram of the concatenated samples,
//! which the property tests assert verbatim.

/// Sub-buckets per octave (power of two). 32 gives ≤ 3.125% relative
/// quantile error for 1920 total buckets (15 KiB per histogram).
pub const SUB: usize = 32;
const SUB_BITS: u32 = SUB.trailing_zeros();
/// Octaves above the exact range: values with a highest set bit in
/// `SUB_BITS..64`.
const OCTAVES: usize = 64 - SUB_BITS as usize;
const BUCKETS: usize = SUB + OCTAVES * SUB;

/// Worst-case relative error of any quantile, by bucket-width construction.
pub const MAX_REL_ERROR: f64 = 1.0 / SUB as f64;

/// Mergeable log-bucketed histogram over `u64` samples (simulated cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    /// Saturating sum of raw samples (exact mean until ~1.8e19 total).
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: identity below `2·SUB`, then `SUB` linear
/// sub-buckets per octave.
fn index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let g = (msb - SUB_BITS) as usize; // octave offset
        SUB + g * SUB + ((v >> (msb - SUB_BITS)) as usize - SUB)
    }
}

/// Inclusive lower bound of bucket `i` (the quantile representative).
fn lower(i: usize) -> u64 {
    if i < 2 * SUB {
        i as u64
    } else {
        let g = (i / SUB - 1) as u32;
        ((SUB + i % SUB) as u64) << g
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the raw samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`), answered as the lower bound of the
    /// bucket holding the rank-`ceil(q·count)` sample, clamped to the exact
    /// observed `[min, max]`. Within [`MAX_REL_ERROR`] of the exact
    /// sort-based answer; exact for values below `2·SUB`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return lower(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another shard in. Bucket counts add elementwise, so the result
    /// is exactly `histogram(samples(self) ∪ samples(other))`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_line() {
        // Every bucket's lower bound maps back to its own index, and
        // consecutive buckets are contiguous.
        for i in 0..BUCKETS {
            assert_eq!(index(lower(i)), i, "bucket {i}");
            if i + 1 < BUCKETS {
                assert!(lower(i) < lower(i + 1));
                assert_eq!(index(lower(i + 1) - 1), i, "upper edge of bucket {i}");
            }
        }
        assert_eq!(index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..(2 * SUB as u64) {
            h.record(v);
        }
        for (k, q) in [(1u64, 0.01), (32, 0.5), (63, 0.999)] {
            let _ = k;
            let rank = ((q * h.count() as f64).ceil() as u64).clamp(1, h.count());
            assert_eq!(h.percentile(q), rank - 1, "q={q} is exact below 2*SUB");
        }
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_is_exact_on_disjoint_ranges() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [3u64, 47, 1000, 65537] {
            a.record(v);
            whole.record(v);
        }
        for v in [9u64, 9, 123_456_789] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 7);
        assert_eq!(a.min(), 3);
        assert_eq!(a.max(), 123_456_789);
    }
}
