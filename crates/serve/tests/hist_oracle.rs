//! Property tests: the log-bucketed histogram against an exact sort-based
//! percentile oracle, on randomized SplitMix64 workloads.
//!
//! Two contracts from DESIGN.md §16:
//!
//! 1. **Bounded relative error.** For every quantile `q`, the histogram
//!    answer is at most the exact rank statistic and within
//!    `MAX_REL_ERROR` (one sub-bucket width) below it.
//! 2. **Exact merge.** `merge(h(a), h(b)) == h(a ∪ b)` — bucket counts,
//!    count, sum, min, and max all equal — so `parallel_map` shards can be
//!    folded without any loss.

use lva_serve::{LatencyHistogram, MAX_REL_ERROR};
use lva_sim::Rng;

/// Exact rank statistic matching the histogram's definition: the
/// `ceil(q·n)`-th smallest sample.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

const QUANTILES: [f64; 6] = [0.01, 0.25, 0.5, 0.95, 0.99, 0.999];

fn check_against_oracle(samples: &[u64], what: &str) {
    let mut h = LatencyHistogram::new();
    let mut sorted = samples.to_vec();
    for &v in samples {
        h.record(v);
    }
    sorted.sort_unstable();
    assert_eq!(h.count(), samples.len() as u64);
    assert_eq!(h.min(), sorted[0]);
    assert_eq!(h.max(), *sorted.last().unwrap());
    let exact_mean = sorted.iter().map(|&v| v as f64).sum::<f64>() / sorted.len() as f64;
    assert!((h.mean() - exact_mean).abs() <= 1e-9 * exact_mean.max(1.0), "{what}: mean");
    for q in QUANTILES {
        let exact = oracle(&sorted, q);
        let approx = h.percentile(q);
        assert!(approx <= exact, "{what} q={q}: histogram {approx} above exact {exact}");
        let err = exact - approx;
        let bound = (exact as f64 * MAX_REL_ERROR).floor() as u64;
        assert!(
            err <= bound,
            "{what} q={q}: err {err} > bound {bound} (exact {exact}, approx {approx})"
        );
    }
}

/// A workload family: uniform, exponential-ish (geometric over octaves),
/// heavy-tailed, and tiny-value streams — each at several sizes.
fn workload(rng: &mut Rng, family: usize, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| match family {
            // Uniform over a wide range.
            0 => rng.gen_range(1, 10_000_000),
            // Exponential-ish: uniform mantissa at a geometric scale.
            1 => {
                let octave = rng.gen_range(0, 30);
                rng.gen_range(1, 2 + (1u64 << octave))
            }
            // Heavy tail: mostly small, occasional huge.
            2 => {
                if rng.gen_bool(0.95) {
                    rng.gen_range(100, 5_000)
                } else {
                    rng.gen_range(1_000_000, 50_000_000_000)
                }
            }
            // Tiny values exercise the exact unit-bucket range.
            _ => rng.gen_range(0, 64),
        })
        .collect()
}

#[test]
fn quantiles_match_the_sort_oracle_within_bucket_width() {
    let mut rng = Rng::new(0x5e71_a7e0);
    for family in 0..4 {
        for n in [1usize, 2, 17, 1000, 20_000] {
            let samples = workload(&mut rng, family, n);
            check_against_oracle(&samples, &format!("family {family} n {n}"));
        }
    }
}

#[test]
fn merge_of_shards_equals_histogram_of_union_exactly() {
    let mut rng = Rng::new(0xd06_f00d);
    for family in 0..4 {
        // Split one workload into ragged shards, as parallel_map would.
        let all = workload(&mut rng, family, 5000);
        let cuts = [0usize, 17, 1700, 1701, 4000, 5000];
        let mut merged = LatencyHistogram::new();
        for w in cuts.windows(2) {
            let mut shard = LatencyHistogram::new();
            for &v in &all[w[0]..w[1]] {
                shard.record(v);
            }
            merged.merge(&shard);
        }
        let mut whole = LatencyHistogram::new();
        for &v in &all {
            whole.record(v);
        }
        // Exact structural equality: counts, sum, min, max, every bucket.
        assert_eq!(merged, whole, "family {family}");
        for q in QUANTILES {
            assert_eq!(merged.percentile(q), whole.percentile(q));
        }
    }
}

#[test]
fn merging_an_empty_shard_is_identity() {
    let mut rng = Rng::new(1);
    let samples = workload(&mut rng, 2, 300);
    let mut h = LatencyHistogram::new();
    for &v in &samples {
        h.record(v);
    }
    let before = h.clone();
    h.merge(&LatencyHistogram::new());
    assert_eq!(h, before);
    // And empty ∪ x == x.
    let mut e = LatencyHistogram::new();
    e.merge(&before);
    assert_eq!(e, before);
}
