//! # lva-roofline — roofline analysis for the co-design study
//!
//! Implements the arithmetic-intensity and sustained-performance accounting
//! behind the paper's Table IV: for each discrete GEMM-shaped convolutional
//! layer,
//!
//! ```text
//! AI = ArithmeticOperations / Bytes = 2*M*N*K / (4*(M*N + K*N + M*K))
//! ```
//!
//! and the sustained fraction of peak is `flops / (cycles * peak_per_cycle)`
//! where the machine peak is `2 * lanes` SP flops per cycle (62.5 GFLOP/s on
//! a 2 GHz A64FX core in the paper; 64 GFLOP/s in our model).

#![forbid(unsafe_code)]
use lva_isa::MachineConfig;

/// Arithmetic intensity of an `M x N x K` GEMM in flops per byte, exactly
/// the paper's formula (single-precision operands, each matrix touched
/// once).
pub fn arithmetic_intensity(m: usize, n: usize, k: usize) -> f64 {
    let ops = 2.0 * m as f64 * n as f64 * k as f64;
    let bytes = 4.0 * (m as f64 * n as f64 + k as f64 * n as f64 + m as f64 * k as f64);
    ops / bytes
}

/// Peak single-precision GFLOP/s of a machine at `freq_ghz`.
pub fn peak_gflops(cfg: &MachineConfig, freq_ghz: f64) -> f64 {
    cfg.peak_flops_per_cycle() * freq_ghz
}

/// Sustained fraction of peak (0..1) achieved by `flops` of work in
/// `cycles` cycles.
pub fn fraction_of_peak(cfg: &MachineConfig, flops: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    flops as f64 / (cycles as f64 * cfg.peak_flops_per_cycle())
}

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct RooflineRow {
    /// Paper-style layer label (e.g. "L1").
    pub label: String,
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub ai: f64,
    /// Sustained performance as a percentage of peak.
    pub pct_peak: f64,
}

impl RooflineRow {
    pub fn new(label: impl Into<String>, (m, n, k): (usize, usize, usize), pct_peak: f64) -> Self {
        RooflineRow { label: label.into(), m, n, k, ai: arithmetic_intensity(m, n, k), pct_peak }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table IV's AI column, recomputed from its M/N/K columns.
    #[test]
    fn table4_ai_values_reproduce() {
        let rows = [
            (32, 369664, 27, 7.32),
            (64, 92416, 288, 26.0),
            (32, 92416, 64, 11.0),
            (128, 23104, 576, 52.0),
            (64, 23104, 128, 21.0),
            (256, 5776, 1152, 101.0),
            (128, 5776, 256, 42.0),
            (256, 1444, 512, 76.0),
            (1024, 361, 4608, 126.0),
            (512, 361, 1024, 88.0),
            (255, 361, 1024, 65.0),
            (256, 1444, 768, 85.0),
            (512, 1444, 2304, 162.0),
            (255, 5776, 256, 63.0),
        ];
        for (m, n, k, want) in rows {
            let ai = arithmetic_intensity(m, n, k);
            let rel = (ai - want).abs() / want;
            assert!(rel < 0.05, "AI({m},{n},{k}) = {ai:.2}, paper says {want}");
        }
    }

    #[test]
    fn a64fx_peak_near_paper() {
        let cfg = MachineConfig::a64fx();
        let peak = peak_gflops(&cfg, 2.0);
        // Paper: 62.5 GFLOP/s per core; our lane model gives 64.
        assert!((peak - 62.5).abs() / 62.5 < 0.05, "peak {peak}");
    }

    #[test]
    fn fraction_of_peak_bounds() {
        let cfg = MachineConfig::a64fx();
        // Running exactly at peak: flops = cycles * peak_per_cycle.
        let f = fraction_of_peak(&cfg, 3200, 100);
        assert!((f - 1.0).abs() < 1e-12);
        assert_eq!(fraction_of_peak(&cfg, 100, 0), 0.0);
        assert!(fraction_of_peak(&cfg, 1600, 100) < 1.0);
    }

    #[test]
    fn roofline_row_builds() {
        let r = RooflineRow::new("L1", (32, 369664, 27), 0.46);
        assert!((r.ai - 7.32).abs() < 0.05);
        assert_eq!(r.m, 32);
    }
}
