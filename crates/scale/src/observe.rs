//! Shared-port observatory: the [`lva_sim::PortObserver`] installed on the
//! SoC's shared L2/DRAM port.
//!
//! Two instruments share one pass over the merged cross-core transaction
//! stream:
//!
//! * a Mattson reuse-distance profile of the merged demand stream, used to
//!   cross-check the simulated shared-L2 hit rate. The headline predictor
//!   is *set-aware*: one [`lva_prof::StackDistance`] per cache set, with a
//!   reference predicted to hit iff its within-set distance is below the
//!   associativity — the classical Mattson result specialized to a
//!   set-associative true-LRU cache, where it is **exact** (the simulated
//!   L2 is exactly that model, so any disagreement is a bug, and the
//!   cross-check is gated at 1% absolute). A fully-associative
//!   [`lva_prof::DistanceHistogram`] of the same stream rides along for
//!   the capacity curve — its gap to the set-aware prediction *is* the
//!   conflict-miss cost of the shared L2's geometry;
//! * time-bucketed bandwidth-utilization and queue-depth samples
//!   ([`BwSample`]) for the Chrome timeline's shared-port counter tracks.
//!
//! The stack-distance state is fed from the very first setup transaction
//! (so the measured phase's predictions see the warm shared L2, mirroring
//! how the cache itself keeps its contents across the barrier), while the
//! histogram and the bandwidth buckets restart at the barrier
//! ([`ProfileHandle::start_measure`]) — the same contents-stay/stats-reset
//! split [`lva_sim::SharedPort::reset_stats`] applies.
//!
//! Observation is pure: the port calls [`PortObserver::transaction`] after
//! timing is decided, so profiled and unprofiled runs are bit-identical
//! (pinned by a test in `lva-sim`).

use std::cell::RefCell;
use std::rc::Rc;

use lva_prof::{DistanceHistogram, StackDistance};
use lva_sim::{PortEvent, PortObserver};

/// Number of time buckets the bandwidth/queue-depth series is kept at.
/// When the run outgrows the covered span, adjacent buckets merge and the
/// bucket width doubles — memory stays constant, resolution degrades
/// gracefully, and the result is deterministic (no wall-clock involved).
const BUCKETS: usize = 512;

/// One bucketed shared-port sample (start cycle `t`, bucket-wide mean
/// utilization, bucket-max queue depth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwSample {
    /// Bucket start, cycles since the measured phase began.
    pub t: u64,
    /// Port service cycles in the bucket / bucket width ∈ [0, 1]-ish
    /// (can exceed 1 transiently: service is booked at grant time).
    pub utilization: f64,
    /// Maximum observed queue depth (other cores with in-flight transfers)
    /// in the bucket.
    pub queue_depth: u32,
}

/// Fixed-size doubling time-bucket accumulator.
#[derive(Debug)]
struct TimeBuckets {
    width: u64,
    service: Vec<u64>,
    depth_max: Vec<u32>,
}

impl TimeBuckets {
    fn new() -> Self {
        TimeBuckets { width: 1 << 10, service: vec![0; BUCKETS], depth_max: vec![0; BUCKETS] }
    }

    fn record(&mut self, at: u64, service: u64, depth: u32) {
        let mut idx = (at / self.width) as usize;
        while idx >= BUCKETS {
            // Halve resolution: merge bucket pairs, double the width.
            for i in 0..BUCKETS / 2 {
                self.service[i] = self.service[2 * i] + self.service[2 * i + 1];
                self.depth_max[i] = self.depth_max[2 * i].max(self.depth_max[2 * i + 1]);
            }
            for i in BUCKETS / 2..BUCKETS {
                self.service[i] = 0;
                self.depth_max[i] = 0;
            }
            self.width *= 2;
            idx = (at / self.width) as usize;
        }
        self.service[idx] += service;
        self.depth_max[idx] = self.depth_max[idx].max(depth);
    }

    fn samples(&self) -> Vec<BwSample> {
        let last = self
            .service
            .iter()
            .zip(&self.depth_max)
            .rposition(|(&s, &d)| s > 0 || d > 0)
            .map_or(0, |i| i + 1);
        (0..last)
            .map(|i| BwSample {
                t: i as u64 * self.width,
                utilization: self.service[i] as f64 / self.width as f64,
                queue_depth: self.depth_max[i],
            })
            .collect()
    }
}

/// The measured-phase output of a [`ProfileHandle`].
#[derive(Debug)]
pub struct MeasuredProfile {
    /// Fully-associative reuse-distance histogram of the merged stream
    /// (the capacity curve; ignores set conflicts by construction).
    pub hist: DistanceHistogram,
    /// Bucketed shared-port bandwidth/queue samples.
    pub bw: Vec<BwSample>,
    /// Transactions observed in the measured phase.
    pub transactions: u64,
    /// References whose within-set stack distance was below the L2's
    /// associativity — the exact per-set LRU hit prediction.
    pub predicted_hits: u64,
}

/// The observer state proper (behind a [`ProfileHandle`]).
#[derive(Debug)]
pub struct PortProfile {
    sd: StackDistance,
    hist: DistanceHistogram,
    /// `sets - 1` (sets is a power of two), mirroring the L2's index
    /// function: `set = line & set_mask`.
    set_mask: usize,
    /// L2 ways per set; a within-set distance `< assoc` is a hit.
    assoc: u64,
    /// One recency stack per cache set.
    set_sd: Vec<StackDistance>,
    set_hits: u64,
    buckets: TimeBuckets,
    transactions: u64,
}

impl PortProfile {
    fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two(), "L2 set count must be a power of two, got {sets}");
        PortProfile {
            sd: StackDistance::new(),
            hist: DistanceHistogram::default(),
            set_mask: sets - 1,
            assoc: assoc as u64,
            set_sd: (0..sets).map(|_| StackDistance::new()).collect(),
            set_hits: 0,
            buckets: TimeBuckets::new(),
            transactions: 0,
        }
    }

    fn record(&mut self, ev: &PortEvent) {
        let dist = self.sd.access(ev.line);
        self.hist.record(dist);
        let set = (ev.line as usize) & self.set_mask;
        if let Some(d) = self.set_sd[set].access(ev.line) {
            if d < self.assoc {
                self.set_hits += 1;
            }
        }
        self.buckets.record(ev.at + ev.wait, ev.service, ev.queue_depth);
        self.transactions += 1;
    }

    /// Drop accumulated statistics but keep the stack-distance state warm
    /// (the shared L2 keeps its contents across the barrier too).
    fn start_measure(&mut self) {
        self.hist = DistanceHistogram::default();
        self.set_hits = 0;
        self.buckets = TimeBuckets::new();
        self.transactions = 0;
    }
}

/// Cloneable handle to a [`PortProfile`]; the clone installed on the port
/// via [`lva_sim::SharedPort::set_observer`] and the one kept by the SoC
/// runner share state.
#[derive(Debug, Clone)]
pub struct ProfileHandle(Rc<RefCell<PortProfile>>);

impl ProfileHandle {
    /// Build a profile for a shared L2 of `sets` sets × `assoc` ways.
    pub fn new(sets: usize, assoc: usize) -> Self {
        ProfileHandle(Rc::new(RefCell::new(PortProfile::new(sets, assoc))))
    }

    /// See [`PortProfile::start_measure`].
    pub fn start_measure(&self) {
        self.0.borrow_mut().start_measure();
    }

    /// Extract the measured-phase profile.
    pub fn finish(&self) -> MeasuredProfile {
        let p = self.0.borrow();
        MeasuredProfile {
            hist: p.hist.clone(),
            bw: p.buckets.samples(),
            transactions: p.transactions,
            predicted_hits: p.set_hits,
        }
    }
}

impl PortObserver for ProfileHandle {
    fn transaction(&mut self, ev: &PortEvent) {
        self.0.borrow_mut().record(ev);
    }
}
