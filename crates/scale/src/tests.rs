use super::*;
use lva_core::{scaled_input, HwTarget, Workload};
use lva_isa::StallCause;
use lva_kernels::GemmVariant;
use lva_nn::{ConvPolicy, ModelId};

fn base() -> Experiment {
    Experiment::new(
        HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 },
        ConvPolicy::gemm_only(GemmVariant::opt3()),
        Workload {
            model: ModelId::Yolov3Tiny,
            input_hw: scaled_input(ModelId::Yolov3Tiny, 13),
            layer_limit: Some(4),
        },
    )
}

/// The N=1 identity contract: a one-core SoC run is bit-identical to the
/// single-core simulator — same cycles, same stall breakdown, same private
/// cache counters, and the shared L2 carries exactly the stats the private
/// L2 would have carried over the measured segment. Contention is
/// identically zero.
#[test]
fn one_core_batch_is_bit_identical_to_the_single_core_simulator() {
    let exp = base();
    let cap = exp.run_traced();
    let soc = run_soc_captured(&exp, &cap, &SocConfig::new(1, Sharding::Batch));

    assert_eq!(soc.cores.len(), 1);
    let core = &soc.cores[0];
    assert_eq!(core.cycles, cap.summary.cycles, "one-core SoC must match the headline run");
    assert_eq!(soc.makespan, cap.summary.cycles);
    assert_eq!(core.stalls.get(StallCause::Contention), 0);
    assert_eq!(soc.port.waits, vec![0]);

    // Reference: single-core live replay of the same capture, private L2.
    let mut mc = exp.hw.machine_config();
    mc.ideal = exp.ideal;
    mc.arena_mib = 1;
    let mut m = Machine::new(mc);
    let start = m.replay_setup(&cap.trace);
    let setup_l2 = m.sys.stats().l2;
    let segs = m.replay_from(&cap.trace, start);
    let seg = segs.last().expect("measured segment");
    assert_eq!(core.cycles, seg.cycles);
    assert_eq!(core.stalls, seg.stalls);
    let full = m.sys.stats();
    assert_eq!(core.mem.l1, full.l1);
    assert_eq!(core.mem.vcache, full.vcache);
    assert_eq!(core.mem.dram_reads, full.dram_reads);
    assert_eq!(core.mem.dram_writes, full.dram_writes);
    // The SoC's private L2 row stays cold; the shared L2's measured-phase
    // stats equal the private L2's delta over the measured segment.
    assert_eq!(core.mem.l2.accesses, 0, "private L2 must be bypassed under a shared port");
    assert_eq!(soc.port.l2.accesses, full.l2.accesses - setup_l2.accesses);
    assert_eq!(soc.port.l2.hits, full.l2.hits - setup_l2.hits);
    assert_eq!(soc.port.l2.misses, full.l2.misses - setup_l2.misses);
    assert_eq!(soc.port.l2.writebacks, full.l2.writebacks - setup_l2.writebacks);
}

/// The contention attribution contract: per core the stall breakdown still
/// sums to the noted total, one core never waits, and total contention
/// grows with the core count at fixed shared-L2 capacity.
#[test]
fn contention_sums_to_total_per_core_and_grows_with_core_count() {
    let exp = base();
    let cap = exp.run_traced();
    let mut last_total = 0u64;
    for n in [1usize, 2, 4] {
        let soc = run_soc_captured(&exp, &cap, &SocConfig::new(n, Sharding::Batch));
        for (i, core) in soc.cores.iter().enumerate() {
            assert_eq!(
                core.stalls.attributed(),
                core.stalls.total(),
                "core {i} of {n}: stall causes must sum to total"
            );
            if n == 1 {
                assert_eq!(core.stalls.get(StallCause::Contention), 0);
            } else {
                assert!(
                    core.stalls.get(StallCause::Contention) > 0,
                    "core {i} of {n} shows no contention on a shared port"
                );
            }
        }
        let total = soc.total_contention();
        assert!(
            total > last_total || n == 1,
            "contention should grow with cores: {n} cores -> {total} <= {last_total}"
        );
        // Cross-check against the port's own ledger: stall-charged
        // contention can never exceed the arbitration waits handed out.
        let waits: u64 = soc.port.waits.iter().sum();
        assert!(total <= waits, "charged contention {total} exceeds port waits {waits}");
        if n > 1 {
            assert!(waits > 0);
        }
        last_total = total;
    }
}

/// Same capture, same config, run twice: byte-identical results (the
/// digest covers every timing-relevant field). Determinism is what makes
/// `--jobs` sweeps reproducible.
#[test]
fn soc_runs_are_deterministic() {
    let exp = base();
    let cap = exp.run_traced();
    for sharding in Sharding::ALL {
        let cfg = SocConfig::new(2, sharding);
        let a = run_soc_captured(&exp, &cap, &cfg);
        let b = run_soc_captured(&exp, &cap, &cfg);
        assert_eq!(a.digest(), b.digest(), "{} run not deterministic", sharding.name());
        assert_eq!(a.makespan, b.makespan);
    }
    // A fresh capture of the same experiment also reproduces.
    let cap2 = exp.run_traced();
    let a = run_soc_captured(&exp, &cap, &SocConfig::new(2, Sharding::Batch));
    let b = run_soc_captured(&exp, &cap2, &SocConfig::new(2, Sharding::Batch));
    assert_eq!(a.digest(), b.digest());
}

/// Pipeline sharding: contiguous non-empty stages covering every layer,
/// 2N frames flow through, stage `c` never starts frame `f` before stage
/// `c-1` finished it (visible as upstream idle time on the later cores),
/// and core 0 never waits on anyone.
#[test]
fn pipeline_sharding_partitions_layers_and_respects_dependencies() {
    let exp = base();
    let cap = exp.run_traced();
    let n = 2;
    let soc = run_soc_captured(&exp, &cap, &SocConfig::new(n, Sharding::Pipeline));
    assert_eq!(soc.frames, 2 * n);
    let n_layers = cap.summary.report.layers.len();
    let mut covered = 0;
    for (i, core) in soc.cores.iter().enumerate() {
        assert_eq!(core.frames, 2 * n, "every stage sees every frame");
        let (a, b) = core.stage_layers.expect("pipeline run reports stage ranges");
        assert_eq!(a, covered, "stages must be contiguous");
        assert!(b > a, "stage {i} is empty");
        covered = b;
    }
    assert_eq!(covered, n_layers, "stages must cover all layers");
    assert_eq!(soc.cores[0].pipeline_idle, 0, "stage 0 has no upstream");
    assert_eq!(soc.makespan, soc.cores.iter().map(|c| c.cycles).max().unwrap());
}

/// The infinite-bandwidth counterfactual kills all waits and all
/// contention, and the SoC can only get faster.
#[test]
fn infinite_shared_bw_removes_contention() {
    let exp = base();
    let cap = exp.run_traced();
    let real = run_soc_captured(&exp, &cap, &SocConfig::new(4, Sharding::Batch));
    let ideal =
        run_soc_captured(&exp, &cap, &SocConfig::new(4, Sharding::Batch).with_infinite_bw(true));
    assert!(real.total_contention() > 0);
    assert_eq!(ideal.total_contention(), 0);
    assert!(ideal.port.waits.iter().all(|&w| w == 0));
    assert!(ideal.makespan <= real.makespan);
}

/// The merged-stream Mattson profile tracks the simulated shared-L2 hit
/// rate (crate headline cross-check; the committed scaling report gates
/// this at 1% absolute on the full grid).
#[test]
fn mattson_merged_stream_prediction_tracks_shared_l2() {
    let exp = base();
    let cap = exp.run_traced();
    for n in [1usize, 4] {
        let soc = run_soc_captured(&exp, &cap, &SocConfig::new(n, Sharding::Batch));
        assert_eq!(soc.mattson.transactions, soc.port.l2.accesses);
        assert!(
            soc.mattson.abs_error() < 0.01,
            "{n} cores: predicted {:.4} vs simulated {:.4}",
            soc.mattson.predicted_hit_rate,
            soc.mattson.simulated_hit_rate
        );
    }
}

/// Multi-core timeline: one process per core plus shared-port counter
/// tracks, and the whole thing satisfies the trace-viewer invariants.
#[test]
fn timeline_is_well_formed_with_one_process_per_core() {
    let exp = base();
    let cap = exp.run_traced();
    let soc = run_soc_captured(&exp, &cap, &SocConfig::new(2, Sharding::Batch).with_timeline(true));
    let tl = soc.timeline.expect("timeline requested");
    assert_eq!(tl.validate(), Ok(()));
    assert!(!tl.is_empty());
    let text = tl.to_json().to_string_pretty();
    for needle in ["\"core0\"", "\"core1\"", "bandwidth utilization", "queue depth"] {
        assert!(text.contains(needle), "timeline missing {needle}");
    }
    assert!(!soc.bw_samples.is_empty());
}

#[test]
fn partition_layers_balances_and_covers() {
    // Equal weights: even split.
    assert_eq!(partition_layers(&[1, 1, 1, 1], 2), vec![(0, 2), (2, 4)]);
    // A heavy head gets its own stage.
    assert_eq!(partition_layers(&[100, 1, 1, 1], 2), vec![(0, 1), (1, 4)]);
    // Never more stages than layers; every stage non-empty.
    let stages = partition_layers(&[5, 1, 1], 3);
    assert_eq!(stages, vec![(0, 1), (1, 2), (2, 3)]);
    // One stage takes everything.
    assert_eq!(partition_layers(&[3, 7], 1), vec![(0, 2)]);
}
