//! # lva-scale — multi-core sharded SoC simulation with a shared-memory
//! contention observatory
//!
//! The paper characterizes a *single* scalar+VPU core per design point; a
//! deployable SoC integrates several such cores behind one shared L2 and
//! one DRAM channel. This crate composes N copies of the existing
//! single-core simulator ([`lva_isa::Machine`], each with its private
//! L1/vector cache) around one bandwidth-contended
//! [`lva_sim::SharedPort`], and partitions an inference workload across
//! them two ways:
//!
//! * **batch sharding** ([`Sharding::Batch`]) — data parallelism: each core
//!   runs one whole frame; N cores process N frames concurrently.
//! * **pipeline sharding** ([`Sharding::Pipeline`]) — layer parallelism:
//!   the network's layers are partitioned into N contiguous stages
//!   (balanced by the capture run's per-layer cycles); frame `f`'s stage
//!   `s` starts once stage `s-1` finished frame `f`.
//!
//! ## How it runs: capture once, replay N-wise
//!
//! One single-core capture ([`lva_core::Experiment::run_traced`]) records
//! the semantic op stream; the SoC run replays it on N machines through a
//! **global cycle-interleaved event loop**: always step the runnable core
//! with the lowest local clock (lowest index on ties), publishing that
//! clock to the shared port before each op so arbitration sees a
//! cross-core time-ordered request stream. The loop is single-threaded and
//! integer-timed, hence fully deterministic — byte-identical results under
//! any host parallelism (`--jobs` only distributes whole SoC runs across
//! sweep cells via `parallel_map`).
//!
//! Setup (weight packing, arena layout) is replayed per core through the
//! shared port to warm the shared L2 realistically, then excluded from
//! measurement by a global barrier: every core's `reset_timing()` plus the
//! port's `reset_stats()`, after which measured frames start at cycle 0 —
//! exactly the single-core methodology (§VI: setup excluded).
//!
//! ## The observatory
//!
//! * **Exact contention attribution** — every cycle a core waits on the
//!   shared port is charged to [`lva_isa::StallCause::Contention`]; per
//!   core, the stall breakdown still sums to total stall cycles (the PR 1
//!   contract). With one core the arbiter never delays anyone and the run
//!   is **bit-identical** to the single-core simulator (pinned by test).
//! * **Merged-stream Mattson cross-check** — a [`lva_sim::PortObserver`]
//!   feeds every shared-port transaction into the `lva-prof`
//!   reuse-distance profiler; the predicted hit rate at the shared-L2
//!   capacity must agree with the simulated shared-L2 hit rate (reported
//!   as [`MattsonCheck`]).
//! * **Multi-core Chrome timeline** — one trace-viewer *process* per core
//!   (layers, phases, per-cause stall tracks) plus shared-port bandwidth
//!   utilization and queue-depth counter tracks on the root process.

#![forbid(unsafe_code)]

use std::rc::Rc;

use lva_core::{CapturedRun, Experiment};
use lva_isa::{
    Machine, ReplayCursor, ReplayOp, ReplayTrace, StallBreakdown, StallCause, StreamHasher,
};
use lva_prof::{timeline_coarse, LayerSpan};
use lva_sim::{MemSystemStats, SharedPort, SharedPortConfig, SharedPortHandle, SharedPortStats};
use lva_trace::ChromeTrace;

mod observe;
pub use observe::{BwSample, MeasuredProfile, PortProfile, ProfileHandle};

/// How the inference workload is partitioned across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharding {
    /// Data parallelism: one whole frame per core, N frames in flight.
    Batch,
    /// Layer parallelism: contiguous layer stages, one per core; `2*N`
    /// frames flow through so fill/drain and steady state are both
    /// visible.
    Pipeline,
}

impl Sharding {
    pub fn name(self) -> &'static str {
        match self {
            Sharding::Batch => "batch",
            Sharding::Pipeline => "pipeline",
        }
    }

    /// Both strategies, in report order.
    pub const ALL: [Sharding; 2] = [Sharding::Batch, Sharding::Pipeline];
}

/// Configuration of one SoC simulation.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Number of cores (≥ 1).
    pub n_cores: usize,
    pub sharding: Sharding,
    /// Counterfactual: infinitely-banked shared port (arbitration waits
    /// forced to zero). Scenario-level knob — it changes core clocks and
    /// hence the merged-stream interleaving, unlike `IdealSpec`'s
    /// timing-only knobs.
    pub infinite_shared_bw: bool,
    /// Record per-core pipeline events and emit the merged multi-process
    /// Chrome timeline (heavier; off for sweep grids).
    pub record_timeline: bool,
}

impl SocConfig {
    pub fn new(n_cores: usize, sharding: Sharding) -> Self {
        SocConfig { n_cores, sharding, infinite_shared_bw: false, record_timeline: false }
    }

    #[must_use]
    pub fn with_infinite_bw(mut self, on: bool) -> Self {
        self.infinite_shared_bw = on;
        self
    }

    #[must_use]
    pub fn with_timeline(mut self, on: bool) -> Self {
        self.record_timeline = on;
        self
    }
}

/// Merged-stream Mattson cross-check of the shared L2 (see crate docs).
///
/// The prediction is *set-aware*: one recency stack per L2 set, a
/// reference predicted to hit iff its within-set stack distance is below
/// the associativity. For the simulated L2 — set-associative, true LRU —
/// this specialization of Mattson's result is exact, so the check catches
/// any divergence between the observed merged stream and the cache's
/// actual update order (the committed scaling report gates it at 1%
/// absolute; in practice the error is 0).
#[derive(Debug, Clone, Copy)]
pub struct MattsonCheck {
    /// Per-set reuse-distance-predicted hit rate of the merged stream.
    pub predicted_hit_rate: f64,
    /// Hit rate the simulated shared L2 actually delivered.
    pub simulated_hit_rate: f64,
    /// Shared-port transactions profiled (the merged demand stream).
    pub transactions: u64,
}

impl MattsonCheck {
    /// Absolute prediction error.
    pub fn abs_error(&self) -> f64 {
        (self.predicted_hit_rate - self.simulated_hit_rate).abs()
    }
}

/// One core's measured-phase results.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// Final local clock (cycles since the post-setup barrier).
    pub cycles: u64,
    /// Stall attribution, including [`StallCause::Contention`].
    pub stalls: StallBreakdown,
    /// Private hierarchy counters (the L2 row is cold: shared-L2 traffic
    /// lives in [`SocResult::port`]).
    pub mem: MemSystemStats,
    /// Cycles the core's clock was advanced waiting for an upstream
    /// pipeline stage (zero under batch sharding). Deliberately *not* a
    /// stall cause: the core issued nothing — it was idle, not stalled.
    pub pipeline_idle: u64,
    /// Frames (batch) or stage-instances (pipeline) this core completed.
    pub frames: usize,
    /// Layer range `[first, last)` of this core's pipeline stage (`None`
    /// under batch sharding).
    pub stage_layers: Option<(usize, usize)>,
}

impl CoreResult {
    /// Fraction of this core's total stall cycles attributed to shared-port
    /// contention (0.0 when the core never stalled).
    pub fn contention_share(&self) -> f64 {
        let total = self.stalls.total();
        if total == 0 {
            0.0
        } else {
            self.stalls.get(StallCause::Contention) as f64 / total as f64
        }
    }
}

/// Results of one SoC simulation.
#[derive(Debug)]
pub struct SocResult {
    pub n_cores: usize,
    pub sharding: Sharding,
    pub infinite_shared_bw: bool,
    /// Per-core results, index = core id.
    pub cores: Vec<CoreResult>,
    /// Shared L2 + port counters over the measured phase.
    pub port: SharedPortStats,
    /// Frames completed by the whole SoC in the measured phase.
    pub frames: usize,
    /// Cycles from the post-setup barrier until the last core finished.
    pub makespan: u64,
    pub mattson: MattsonCheck,
    /// Shared-port bandwidth/queue samples over the measured phase
    /// (bucketed; also rendered as counter tracks on the timeline).
    pub bw_samples: Vec<BwSample>,
    /// Merged multi-process timeline (when
    /// [`SocConfig::record_timeline`]).
    pub timeline: Option<ChromeTrace>,
}

impl SocResult {
    /// SoC throughput in frames per kilocycle.
    pub fn frames_per_kcycle(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.frames as f64 * 1000.0 / self.makespan as f64
        }
    }

    /// Average cycles per frame at the SoC level.
    pub fn cycles_per_frame(&self) -> f64 {
        self.makespan as f64 / self.frames.max(1) as f64
    }

    /// Total contention stall cycles across cores.
    pub fn total_contention(&self) -> u64 {
        self.cores.iter().map(|c| c.stalls.get(StallCause::Contention)).sum()
    }

    /// Mean per-core contention share of stall cycles.
    pub fn mean_contention_share(&self) -> f64 {
        if self.cores.is_empty() {
            0.0
        } else {
            self.cores.iter().map(CoreResult::contention_share).sum::<f64>()
                / self.cores.len() as f64
        }
    }

    /// Order-independent digest of every timing-relevant field — two
    /// deterministic runs must agree byte-for-byte, pinned by hashing.
    pub fn digest(&self) -> u64 {
        let mut h = StreamHasher::new();
        h.write_u64(self.n_cores as u64);
        h.write_u64(self.frames as u64);
        h.write_u64(self.makespan);
        for c in &self.cores {
            h.write_u64(c.cycles);
            h.write_u64(c.pipeline_idle);
            for cause in StallCause::ALL {
                h.write_u64(c.stalls.get(cause));
            }
            h.write_u64(c.mem.l1.accesses);
            h.write_u64(c.mem.l1.misses);
            h.write_u64(c.mem.vcache.accesses);
            h.write_u64(c.mem.vcache.misses);
            h.write_u64(c.mem.dram_reads);
            h.write_u64(c.mem.dram_writes);
        }
        h.write_u64(self.port.l2.accesses);
        h.write_u64(self.port.l2.hits);
        h.write_u64(self.port.l2.misses);
        h.write_u64(self.port.l2.writebacks);
        for &w in &self.port.waits {
            h.write_u64(w);
        }
        for &s in &self.port.service_cycles {
            h.write_u64(s);
        }
        h.finish()
    }
}

/// Capture the experiment's op stream once, then run the SoC simulation.
///
/// Convenience over [`run_soc_captured`] — reuse one [`CapturedRun`] across
/// core counts and sharding strategies to amortize the capture.
pub fn run_soc(exp: &Experiment, cfg: &SocConfig) -> SocResult {
    let cap = exp.run_traced();
    run_soc_captured(exp, &cap, cfg)
}

/// Per-core state driven by the global event loop.
struct CoreState {
    m: Machine,
    cur: ReplayCursor,
    /// Pipeline: current frame index; batch: 0 while the single frame runs.
    frame: usize,
    /// Pipeline: whether the current frame's stage has begun (the upstream
    /// dependency was consumed).
    started: bool,
    idle: u64,
    frames_done: usize,
    /// Closed layer spans (timeline capture).
    spans: Vec<LayerSpan>,
    open_layers: Vec<(String, u64)>,
}

impl CoreState {
    fn step(&mut self, trace: &ReplayTrace, capture_spans: bool) -> bool {
        if capture_spans {
            let peek = trace.ops.get(self.cur.pos()).copied();
            let before = self.m.cycles();
            let stepped = self.m.replay_step(trace, &mut self.cur);
            match peek {
                Some(ReplayOp::LayerBegin { index, desc }) => {
                    let name = format!("L{index} {}", trace.descs[desc as usize]);
                    self.open_layers.push((name, before));
                }
                Some(ReplayOp::LayerEnd) => {
                    if let Some((name, t0)) = self.open_layers.pop() {
                        self.spans.push((name, t0, self.m.cycles()));
                    }
                }
                _ => {}
            }
            stepped
        } else {
            self.m.replay_step(trace, &mut self.cur)
        }
    }
}

/// Pick the runnable core with the lowest local clock (lowest index wins
/// ties — round-robin whenever cores are in lockstep).
fn next_core(cores: &[CoreState], runnable: impl Fn(usize, &CoreState) -> bool) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (i, c) in cores.iter().enumerate() {
        if runnable(i, c) {
            let t = c.m.cycles();
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i));
            }
        }
    }
    best.map(|(_, i)| i)
}

/// Replay `range` to completion on every core (setup, and batch frames).
fn run_uniform(
    cores: &mut [CoreState],
    trace: &ReplayTrace,
    range: (usize, usize),
    capture_spans: bool,
) {
    for c in cores.iter_mut() {
        c.cur = ReplayCursor::new(range.0, range.1);
    }
    while let Some(i) = next_core(cores, |_, c| !c.cur.done()) {
        let c = &mut cores[i];
        c.m.sys.set_port_now(c.m.cycles());
        c.step(trace, capture_spans);
        if c.cur.done() {
            c.frames_done += 1;
        }
    }
}

/// Run the layer-pipeline schedule: core `c` executes op range `stages[c]`
/// for each of `frames` frames, starting frame `f` only once core `c-1`
/// finished frame `f`.
fn run_pipeline(
    cores: &mut [CoreState],
    trace: &ReplayTrace,
    stages: &[(usize, usize)],
    frames: usize,
    capture_spans: bool,
) {
    let n = cores.len();
    let mut done_at: Vec<Vec<u64>> = vec![Vec::with_capacity(frames); n];
    for c in cores.iter_mut() {
        c.frame = 0;
        c.started = false;
    }
    loop {
        let runnable = |i: usize, c: &CoreState| {
            c.frame < frames && (i == 0 || done_at[i - 1].len() > c.frame)
        };
        let Some(i) = next_core(cores, runnable) else {
            assert!(
                cores.iter().all(|c| c.frame >= frames),
                "pipeline deadlock: no runnable core with frames outstanding"
            );
            break;
        };
        let c = &mut cores[i];
        if !c.started {
            if i > 0 {
                let ready = done_at[i - 1][c.frame];
                let before = c.m.cycles();
                c.m.advance_to(ready);
                c.idle += ready.saturating_sub(before);
            }
            c.cur = ReplayCursor::new(stages[i].0, stages[i].1);
            c.started = true;
        }
        c.m.sys.set_port_now(c.m.cycles());
        c.step(trace, capture_spans);
        if c.cur.done() {
            done_at[i].push(c.m.cycles());
            c.frame += 1;
            c.frames_done += 1;
            c.started = false;
        }
    }
}

/// Index of the (single) `ResetTiming` boundary separating setup ops from
/// the measured frame.
fn setup_boundary(trace: &ReplayTrace) -> usize {
    let mut it = trace.ops.iter().enumerate().filter(|(_, op)| **op == ReplayOp::ResetTiming);
    let (rt, _) = it.next().expect("captured trace has a setup/measure boundary");
    assert!(it.next().is_none(), "expected a single-frame capture (one ResetTiming)");
    rt
}

/// Positions of top-level `LayerBegin` ops inside `range`.
fn layer_begins(trace: &ReplayTrace, range: (usize, usize)) -> Vec<usize> {
    let mut begins = Vec::new();
    let mut depth = 0usize;
    for (i, op) in trace.ops[range.0..range.1].iter().enumerate() {
        match op {
            ReplayOp::LayerBegin { .. } => {
                if depth == 0 {
                    begins.push(range.0 + i);
                }
                depth += 1;
            }
            ReplayOp::LayerEnd => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    begins
}

/// Greedy contiguous partition of `layer_cycles` into `n` non-empty stages,
/// balanced by single-core cycles: cut after the prefix whose cumulative
/// cost first reaches the stage's pro-rata share of the total.
fn partition_layers(layer_cycles: &[u64], n: usize) -> Vec<(usize, usize)> {
    let l = layer_cycles.len();
    assert!(n >= 1 && l >= n, "need at least as many layers ({l}) as pipeline stages ({n})");
    let total: u64 = layer_cycles.iter().sum();
    let mut stages = Vec::with_capacity(n);
    let mut start = 0usize;
    let mut cum = 0u64;
    for s in 0..n {
        let target = total * (s as u64 + 1) / n as u64;
        let mut end = start;
        while end < l {
            // Leave at least one layer for each remaining stage.
            if l - (end + 1) < n - s - 1 {
                break;
            }
            cum += layer_cycles[end];
            end += 1;
            if cum >= target && end > start {
                break;
            }
        }
        if end == start {
            // Ran out of slack: take exactly one layer.
            cum += layer_cycles[end];
            end += 1;
        }
        stages.push((start, end));
        start = end;
    }
    stages.last_mut().expect("n >= 1").1 = l;
    stages
}

/// Run the SoC simulation against an existing capture of `exp`.
///
/// # Panics
/// Panics if `cfg.n_cores == 0`, or under [`Sharding::Pipeline`] if the
/// capture has fewer layers than cores.
pub fn run_soc_captured(exp: &Experiment, cap: &CapturedRun, cfg: &SocConfig) -> SocResult {
    assert!(cfg.n_cores >= 1, "SoC needs at least one core");
    let trace = &cap.trace;
    let rt = setup_boundary(trace);
    let frame = (rt + 1, trace.ops.len());

    // One shared L2 + DRAM port, same geometry the private L2 would have.
    let mut mc = exp.hw.machine_config();
    mc.ideal = exp.ideal;
    mc.arena_mib = 1; // replay is timing-only; no functional arena needed
    let mut port_cfg = SharedPortConfig::for_line_bytes(cfg.n_cores, mc.mem.l2.clone());
    port_cfg.infinite_bw = cfg.infinite_shared_bw;
    let profile = ProfileHandle::new(port_cfg.l2.sets(), port_cfg.l2.assoc);
    let mut port = SharedPort::new(port_cfg);
    port.set_observer(Box::new(profile.clone()));
    let port: SharedPortHandle = port.into_handle();

    let mut cores: Vec<CoreState> = (0..cfg.n_cores)
        .map(|c| {
            let mut m = Machine::new(mc.clone());
            m.sys.attach_shared_port(Rc::clone(&port), c);
            CoreState {
                m,
                cur: ReplayCursor::new(0, 0),
                frame: 0,
                started: false,
                idle: 0,
                frames_done: 0,
                spans: Vec::new(),
                open_layers: Vec::new(),
            }
        })
        .collect();

    // Phase A: every core replays setup through the shared port (warms the
    // shared L2 exactly as N cores loading weights would).
    run_uniform(&mut cores, trace, (0, rt), false);

    // Global barrier: drop setup timing everywhere, keep cache contents.
    for c in &mut cores {
        // Drain setup-tail arbitration waits so they don't leak into the
        // measured phase's first instruction.
        let _ = c.m.sys.take_contention();
        c.m.reset_timing();
        c.frames_done = 0;
        if cfg.record_timeline {
            c.m.record_pipe_events();
        }
    }
    port.borrow_mut().reset_stats();
    profile.start_measure();

    // Phase B: measured frames.
    let (frames, stages) = match cfg.sharding {
        Sharding::Batch => {
            run_uniform(&mut cores, trace, frame, cfg.record_timeline);
            (cfg.n_cores, None)
        }
        Sharding::Pipeline => {
            let begins = layer_begins(trace, frame);
            let layer_cycles: Vec<u64> =
                cap.summary.report.layers.iter().map(|l| l.cycles.max(1)).collect();
            assert_eq!(
                begins.len(),
                layer_cycles.len(),
                "trace layer count disagrees with the capture report"
            );
            let stages = partition_layers(&layer_cycles, cfg.n_cores);
            // Stage op ranges: stage 0 owns the pre-layer preamble, the
            // last stage owns the post-layer tail.
            let op_ranges: Vec<(usize, usize)> = stages
                .iter()
                .enumerate()
                .map(|(s, &(a, b))| {
                    let lo = if s == 0 { frame.0 } else { begins[a] };
                    let hi = if b == layer_cycles.len() { frame.1 } else { begins[b] };
                    (lo, hi)
                })
                .collect();
            let frames = 2 * cfg.n_cores;
            run_pipeline(&mut cores, trace, &op_ranges, frames, cfg.record_timeline);
            (frames, Some(stages))
        }
    };

    let port_stats = port.borrow().stats();
    let makespan = cores.iter().map(|c| c.m.cycles()).max().unwrap_or(0);
    let measured = profile.finish();
    let (bw_samples, transactions) = (measured.bw, measured.transactions);
    let mattson = MattsonCheck {
        predicted_hit_rate: if transactions == 0 {
            0.0
        } else {
            measured.predicted_hits as f64 / transactions as f64
        },
        simulated_hit_rate: port_stats.l2.hit_rate(),
        transactions,
    };

    let timeline = cfg.record_timeline.then(|| {
        let resolution = makespan / 100_000;
        let mut root = ChromeTrace::new();
        root.note("sharding", cfg.sharding.name());
        root.note("cores", &cfg.n_cores.to_string());
        root.note("hw", &exp.hw.describe());
        for s in &bw_samples {
            root.counter("shared port", "bandwidth utilization", s.t, s.utilization);
            root.counter("shared port queue", "queue depth", s.t, f64::from(s.queue_depth));
        }
        for (i, c) in cores.iter_mut().enumerate() {
            // A frame cut mid-layer (pipeline stage boundaries) leaves no
            // dangling span: stages are sliced at layer boundaries.
            let events = c.m.take_pipe_events();
            let sub = timeline_coarse(&events, &c.spans, resolution);
            root.merge_process(i as u64 + 2, &format!("core{i}"), sub);
        }
        root
    });

    let cores = cores
        .into_iter()
        .enumerate()
        .map(|(i, c)| CoreResult {
            cycles: c.m.cycles(),
            stalls: c.m.stalls,
            mem: c.m.sys.stats(),
            pipeline_idle: c.idle,
            frames: c.frames_done,
            stage_layers: stages.as_ref().map(|s| s[i]),
        })
        .collect();

    SocResult {
        n_cores: cfg.n_cores,
        sharding: cfg.sharding,
        infinite_shared_bw: cfg.infinite_shared_bw,
        cores,
        port: port_stats,
        frames,
        makespan,
        mattson,
        bw_samples,
        timeline,
    }
}

#[cfg(test)]
mod tests;
