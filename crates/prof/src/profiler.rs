//! The memory-hierarchy profiler: an [`AccessSink`] that feeds every
//! per-level demand stream through a [`StackDistance`] tracker.
//!
//! One profiled run yields, per cache level:
//!
//! * a reuse-distance histogram and the **predicted hit rate at every
//!   power-of-two capacity** (Mattson), answering the paper's §V–§VI
//!   capacity questions without re-running the sweep;
//! * an exact **3C miss classification** — compulsory (first touch),
//!   capacity (stack distance ≥ the level's line capacity: a
//!   fully-associative cache of the same size would also miss), conflict
//!   (the set-associative cache missed although the distance says a
//!   fully-associative one would have hit);
//! * per-layer and per-phase histograms via the [`TapScope`] markers the
//!   simulator forwards through the tap.
//!
//! The profiler observes the *demand* stream only. Prefetch fills are
//! counted but do not enter the stack model: they perturb the real cache's
//! contents, which is precisely why predicted-vs-simulated agreement is
//! validated on the gem5 profiles (no prefetchers) in `lva-check`.

use crate::mattson::{DistanceHistogram, StackDistance};
use lva_sim::{AccessKind, AccessSink, MemSystem, Miss3C, TapLevel, TapScope};
use lva_trace::Json;
use std::cell::RefCell;
use std::rc::Rc;

const NUM_LEVELS: usize = 3;

fn level_idx(level: TapLevel) -> usize {
    match level {
        TapLevel::L1 => 0,
        TapLevel::VectorCache => 1,
        TapLevel::L2 => 2,
    }
}

const LEVELS: [TapLevel; NUM_LEVELS] = [TapLevel::L1, TapLevel::VectorCache, TapLevel::L2];

/// Per-level stack model plus the counters derived from it.
#[derive(Debug, Default)]
struct LevelState {
    capacity_lines: u64,
    line_bytes: u64,
    tree: StackDistance,
    hist: DistanceHistogram,
    three_c: Miss3C,
    accesses: u64,
    sim_hits: u64,
    prefetch_fills: u64,
}

/// Histograms attributed to one scope (a layer or a kernel phase).
#[derive(Debug, Clone, Default)]
pub struct ScopeProfile {
    pub name: String,
    /// One histogram per level, indexed like [`TapLevel`] (l1d, vcache, l2).
    pub hist: [DistanceHistogram; NUM_LEVELS],
    pub accesses: u64,
}

/// The [`AccessSink`] installed on a [`MemSystem`] tap.
#[derive(Debug, Default)]
pub struct MemProfiler {
    levels: [LevelState; NUM_LEVELS],
    layers: Vec<ScopeProfile>,
    phases: Vec<ScopeProfile>,
    cur_layer: Option<usize>,
    cur_phase: Option<usize>,
}

impl MemProfiler {
    fn configure(&mut self, sys: &MemSystem) {
        let set = |st: &mut LevelState, bytes: usize, line: usize| {
            st.capacity_lines = (bytes / line) as u64;
            st.line_bytes = line as u64;
        };
        set(&mut self.levels[0], sys.l1.config().bytes, sys.l1.config().line_bytes);
        set(&mut self.levels[2], sys.l2.config().bytes, sys.l2.config().line_bytes);
        if let Some(vc) = &sys.vcache {
            set(&mut self.levels[1], vc.config().bytes, vc.config().line_bytes);
        }
    }

    fn observe(&mut self, level: TapLevel, line: u64, hit: bool) {
        let st = &mut self.levels[level_idx(level)];
        let dist = st.tree.access(line);
        st.hist.record(dist);
        st.accesses += 1;
        if hit {
            st.sim_hits += 1;
        } else {
            match dist {
                None => st.three_c.compulsory += 1,
                Some(d) if d >= st.capacity_lines => st.three_c.capacity += 1,
                Some(_) => st.three_c.conflict += 1,
            }
        }
        let li = level_idx(level);
        if let Some(i) = self.cur_layer {
            self.layers[i].hist[li].record(dist);
            self.layers[i].accesses += 1;
        }
        if let Some(i) = self.cur_phase {
            self.phases[i].hist[li].record(dist);
            self.phases[i].accesses += 1;
        }
    }

    fn enter_scope(scopes: &mut Vec<ScopeProfile>, name: String) -> usize {
        if let Some(i) = scopes.iter().position(|s| s.name == name) {
            i
        } else {
            scopes.push(ScopeProfile { name, ..ScopeProfile::default() });
            scopes.len() - 1
        }
    }

    fn into_profile(self) -> MemProfile {
        let levels = LEVELS
            .iter()
            .zip(self.levels)
            .filter(|(_, st)| st.accesses > 0 || st.capacity_lines > 0)
            .map(|(&level, st)| LevelProfile {
                level,
                capacity_lines: st.capacity_lines,
                line_bytes: st.line_bytes,
                hist: st.hist,
                three_c: st.three_c,
                accesses: st.accesses,
                sim_hits: st.sim_hits,
                prefetch_fills: st.prefetch_fills,
            })
            .collect();
        MemProfile { levels, layers: self.layers, phases: self.phases }
    }
}

impl AccessSink for MemProfiler {
    fn access(&mut self, level: TapLevel, line: u64, _kind: AccessKind, hit: bool) {
        self.observe(level, line, hit);
    }

    fn prefetch_fill(&mut self, level: TapLevel, _line: u64) {
        self.levels[level_idx(level)].prefetch_fills += 1;
    }

    fn scope(&mut self, scope: TapScope<'_>) {
        match scope {
            TapScope::LayerBegin { index, desc } => {
                let i = Self::enter_scope(&mut self.layers, format!("L{index} {desc}"));
                self.cur_layer = Some(i);
            }
            TapScope::LayerEnd => self.cur_layer = None,
            TapScope::PhaseBegin { name } => {
                let i = Self::enter_scope(&mut self.phases, name.to_string());
                self.cur_phase = Some(i);
            }
            TapScope::PhaseEnd => self.cur_phase = None,
        }
    }
}

/// Shared handle kept by the caller while a clone of the profiler sits in
/// the [`MemSystem`] tap slot.
struct Shared(Rc<RefCell<MemProfiler>>);

impl AccessSink for Shared {
    fn access(&mut self, level: TapLevel, line: u64, kind: AccessKind, hit: bool) {
        self.0.borrow_mut().access(level, line, kind, hit);
    }
    fn prefetch_fill(&mut self, level: TapLevel, line: u64) {
        self.0.borrow_mut().prefetch_fill(level, line);
    }
    fn scope(&mut self, scope: TapScope<'_>) {
        self.0.borrow_mut().scope(scope);
    }
}

/// Owner side of an attached profiler; call [`ProfilerHandle::detach`] when
/// the run is over.
pub struct ProfilerHandle(Rc<RefCell<MemProfiler>>);

/// Install a [`MemProfiler`] as `sys`'s address-stream tap.
///
/// The profiler snapshots each level's geometry at attach time; attach
/// *after* configuring the hierarchy and *before* running the kernel.
pub fn attach(sys: &mut MemSystem) -> ProfilerHandle {
    let mut p = MemProfiler::default();
    p.configure(sys);
    let rc = Rc::new(RefCell::new(p));
    sys.set_tap(Box::new(Shared(Rc::clone(&rc))));
    ProfilerHandle(rc)
}

impl ProfilerHandle {
    /// Remove the tap, write the 3C classification into the simulated
    /// caches' [`lva_sim::CacheStats`], and return the full profile.
    pub fn detach(self, sys: &mut MemSystem) -> MemProfile {
        drop(sys.take_tap());
        let profiler = Rc::try_unwrap(self.0)
            .unwrap_or_else(|_| panic!("profiler tap still installed elsewhere"))
            .into_inner();
        sys.l1.stats.three_c = profiler.levels[0].three_c;
        sys.l2.stats.three_c = profiler.levels[2].three_c;
        if let Some(vc) = sys.vcache.as_mut() {
            vc.stats.three_c = profiler.levels[1].three_c;
        }
        profiler.into_profile()
    }
}

/// One cache level's profile: histogram, classification, and the
/// simulated outcome on the identical stream for validation.
#[derive(Debug, Clone)]
pub struct LevelProfile {
    pub level: TapLevel,
    pub capacity_lines: u64,
    pub line_bytes: u64,
    pub hist: DistanceHistogram,
    pub three_c: Miss3C,
    pub accesses: u64,
    pub sim_hits: u64,
    pub prefetch_fills: u64,
}

impl LevelProfile {
    /// Hit rate the simulated (set-associative) cache achieved.
    pub fn sim_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.sim_hits as f64 / self.accesses as f64
        }
    }

    /// Mattson-predicted hit rate at this level's actual capacity.
    pub fn predicted_hit_rate(&self) -> f64 {
        if self.capacity_lines == 0 {
            0.0
        } else {
            self.hist.predicted_hit_rate(self.capacity_lines)
        }
    }

    /// Predicted hit rate at an alternative capacity in bytes (power of
    /// two, ≥ one line).
    pub fn predicted_hit_rate_at_bytes(&self, bytes: u64) -> f64 {
        self.hist.predicted_hit_rate((bytes / self.line_bytes).max(1))
    }

    /// Hit-rate-vs-capacity curve as `(capacity_bytes, hit_rate)`.
    pub fn curve_bytes(&self) -> Vec<(u64, f64)> {
        self.hist.curve().into_iter().map(|(lines, hr)| (lines * self.line_bytes, hr)).collect()
    }
}

/// Result of a profiled run.
#[derive(Debug, Clone, Default)]
pub struct MemProfile {
    pub levels: Vec<LevelProfile>,
    pub layers: Vec<ScopeProfile>,
    pub phases: Vec<ScopeProfile>,
}

impl MemProfile {
    pub fn level(&self, level: TapLevel) -> Option<&LevelProfile> {
        self.levels.iter().find(|l| l.level == level)
    }

    fn hist_json(h: &DistanceHistogram) -> Json {
        Json::obj()
            .field("cold", h.cold)
            .field(
                "buckets",
                Json::Arr(h.buckets.iter().map(|&b| Json::from(b)).collect::<Vec<_>>()),
            )
            .field("total", h.total())
    }

    pub fn to_json(&self) -> Json {
        let levels: Vec<Json> = self
            .levels
            .iter()
            .filter(|l| l.accesses > 0)
            .map(|l| {
                let curve: Vec<Json> = l
                    .curve_bytes()
                    .into_iter()
                    .map(|(bytes, hr)| Json::obj().field("bytes", bytes).field("hit_rate", hr))
                    .collect();
                Json::obj()
                    .field("level", l.level.name())
                    .field("capacity_lines", l.capacity_lines)
                    .field("line_bytes", l.line_bytes)
                    .field("accesses", l.accesses)
                    .field("sim_hit_rate", l.sim_hit_rate())
                    .field("predicted_hit_rate", l.predicted_hit_rate())
                    .field(
                        "miss_classes",
                        Json::obj()
                            .field("compulsory", l.three_c.compulsory)
                            .field("capacity", l.three_c.capacity)
                            .field("conflict", l.three_c.conflict),
                    )
                    .field("prefetch_fills", l.prefetch_fills)
                    .field("reuse_histogram", Self::hist_json(&l.hist))
                    .field("capacity_curve", Json::Arr(curve))
            })
            .collect();
        let scope_json = |scopes: &[ScopeProfile]| {
            Json::Arr(
                scopes
                    .iter()
                    .map(|s| {
                        let mut o = Json::obj()
                            .field("name", s.name.as_str())
                            .field("accesses", s.accesses);
                        for (i, level) in LEVELS.iter().enumerate() {
                            if s.hist[i].total() > 0 {
                                o = o.field(level.name(), Self::hist_json(&s.hist[i]));
                            }
                        }
                        o
                    })
                    .collect::<Vec<_>>(),
            )
        };
        Json::obj()
            .field("levels", Json::Arr(levels))
            .field("layers", scope_json(&self.layers))
            .field("phases", scope_json(&self.phases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_isa::{KernelPhase, Machine, MachineConfig};

    fn workload(m: &mut Machine) {
        let a = m.mem.alloc(8192);
        let b = m.mem.alloc(8192);
        let vl = m.setvl(64);
        m.phase(KernelPhase::Pack, |m| {
            for rep in 0..4 {
                let _ = rep;
                for i in 0..32 {
                    m.vle(0, a.addr(i * 64), vl);
                    m.vse(0, b.addr(i * 64), vl);
                }
            }
        });
    }

    #[test]
    fn profiling_is_timing_neutral_and_annotates_3c() {
        let cfg = MachineConfig::rvv_gem5(2048, 8, 1 << 20);
        let mut plain = Machine::new(cfg.clone());
        workload(&mut plain);

        let mut prof = Machine::new(cfg);
        let handle = attach(&mut prof.sys);
        workload(&mut prof);
        let profile = handle.detach(&mut prof.sys);

        assert_eq!(prof.cycles(), plain.cycles(), "profiling must not perturb timing");

        // RVV: vector traffic goes vcache -> L2; the L2 sees the filtered
        // stream and the profiler observed every access the cache counted.
        let l2 = profile.level(TapLevel::L2).expect("l2 profiled");
        assert_eq!(l2.accesses, prof.sys.l2.stats.accesses);
        assert_eq!(l2.sim_hits, prof.sys.l2.stats.hits);
        // Misses fully classified, and the classification landed in stats.
        let c = prof.sys.l2.stats.three_c;
        assert_eq!(c.classified(), prof.sys.l2.stats.misses);
        assert_eq!(c, l2.three_c);
        // The working set (16 KB) fits in 1 MB: no capacity misses, and
        // the second pass re-hits so compulsory < accesses.
        assert_eq!(c.capacity, 0);
        assert!(c.compulsory > 0);

        // Phase attribution captured the Pack phase.
        assert_eq!(profile.phases.len(), 1);
        assert!(!profile.phases[0].name.is_empty());
        assert!(profile.phases[0].accesses > 0);

        // JSON report round-trips through the parser.
        let j = profile.to_json();
        let parsed = lva_trace::Json::parse(&j.to_string_pretty()).expect("valid json");
        assert_eq!(parsed, j);
    }

    #[test]
    fn prediction_matches_simulated_cache_on_thrash_and_fit() {
        // Working set fits: predicted == simulated == high hit rate.
        let cfg = MachineConfig::rvv_gem5(2048, 8, 1 << 20);
        let mut m = Machine::new(cfg);
        let handle = attach(&mut m.sys);
        workload(&mut m);
        let profile = handle.detach(&mut m.sys);
        let l2 = profile.level(TapLevel::L2).expect("l2");
        let err = (l2.predicted_hit_rate() - l2.sim_hit_rate()).abs();
        assert!(
            err < 0.01,
            "predicted {} vs simulated {} (err {err})",
            l2.predicted_hit_rate(),
            l2.sim_hit_rate()
        );
        // And the curve is monotone in capacity.
        let curve = l2.curve_bytes();
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
