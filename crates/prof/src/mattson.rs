//! Mattson stack-distance (reuse-distance) computation in `O(log n)` per
//! access.
//!
//! The classical result (Mattson et al., 1970): for any stack algorithm —
//! LRU in particular — a single pass over the address stream yields the hit
//! count at *every* cache capacity simultaneously. An access with stack
//! distance `d` (number of **distinct** lines touched since the previous
//! access to the same line) hits in a fully-associative LRU cache of
//! capacity `C` lines iff `d < C`.
//!
//! [`StackDistance`] implements the standard tree-based algorithm: each live
//! line owns a *slot* in a Fenwick (binary indexed) tree ordered by
//! recency; the distance of a re-reference is the number of live slots more
//! recent than its old slot, computed with one prefix sum. Re-referenced
//! lines move to a fresh newest slot; when the slot array grows past twice
//! the live-line count it is compacted, keeping the amortized cost
//! `O(log n)` per access with memory proportional to the working set.

use std::collections::HashMap;

/// Exact LRU stack-distance tracker over a line-address stream.
#[derive(Debug, Default)]
pub struct StackDistance {
    /// Fenwick tree over slots (1-based); `bit[i]` sums occupancy.
    bit: Vec<i64>,
    /// line -> current slot (1-based).
    slot_of: HashMap<u64, usize>,
    /// Highest slot handed out (slots above `slot_of.len()` are dead).
    n_slots: usize,
}

impl StackDistance {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct lines ever observed (the live LRU stack depth).
    pub fn live_lines(&self) -> usize {
        self.slot_of.len()
    }

    fn bit_add(&mut self, mut i: usize, delta: i64) {
        while i < self.bit.len() {
            self.bit[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of occupancies over slots `1..=i`.
    fn bit_prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.bit[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn push_slot(&mut self, line: u64) {
        self.n_slots += 1;
        if self.n_slots >= self.bit.len() {
            let new_len = (self.bit.len().max(8) * 2).max(self.n_slots + 1);
            self.bit.resize(new_len, 0);
            // Rebuild: resizing a Fenwick tree in place would require
            // re-threading parents; with the occupancy map at hand a full
            // rebuild is O(n log n) and happens O(log n) times total.
            self.bit.iter_mut().for_each(|b| *b = 0);
            let slots: Vec<usize> = self.slot_of.values().copied().collect();
            for s in slots {
                self.bit_add(s, 1);
            }
        }
        self.bit_add(self.n_slots, 1);
        self.slot_of.insert(line, self.n_slots);
    }

    /// Re-number live lines into slots `1..=live` preserving recency order.
    fn compact(&mut self) {
        let mut pairs: Vec<(usize, u64)> =
            self.slot_of.iter().map(|(&line, &slot)| (slot, line)).collect();
        pairs.sort_unstable();
        self.bit.iter_mut().for_each(|b| *b = 0);
        self.slot_of.clear();
        self.n_slots = 0;
        for (_, line) in pairs {
            self.push_slot(line);
        }
    }

    /// Observe one line access. Returns `Some(distance)` — the number of
    /// distinct other lines touched since the last access to `line` — or
    /// `None` on the first-ever touch (a *compulsory* / cold access).
    pub fn access(&mut self, line: u64) -> Option<u64> {
        let dist = match self.slot_of.get(&line) {
            Some(&slot) => {
                let newer = self.slot_of.len() as i64 - self.bit_prefix(slot);
                self.bit_add(slot, -1);
                self.slot_of.remove(&line);
                Some(newer as u64)
            }
            None => None,
        };
        self.push_slot(line);
        if self.n_slots > 64 && self.n_slots > 2 * self.slot_of.len() {
            self.compact();
        }
        dist
    }
}

/// Log2-bucketed reuse-distance histogram with cold (first-touch) count.
///
/// Bucket 0 counts distance 0 (immediate re-reference); bucket `j >= 1`
/// counts distances in `[2^(j-1), 2^j)`. Every cache geometry in the
/// repository has a power-of-two line capacity, for which the bucketing is
/// *exact*: predicted hits at `C = 2^k` lines is the sum of buckets
/// `0..=k`, because every distance in those buckets is `< C` and every
/// distance outside them is `>= C`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistanceHistogram {
    /// First-ever touches (infinite-capacity misses).
    pub cold: u64,
    /// `buckets[0]` = distance 0; `buckets[j]` = distances `[2^(j-1), 2^j)`.
    pub buckets: Vec<u64>,
}

impl DistanceHistogram {
    pub fn bucket_of(dist: u64) -> usize {
        if dist == 0 {
            0
        } else {
            64 - dist.leading_zeros() as usize
        }
    }

    pub fn record(&mut self, dist: Option<u64>) {
        match dist {
            None => self.cold += 1,
            Some(d) => {
                let b = Self::bucket_of(d);
                if self.buckets.len() <= b {
                    self.buckets.resize(b + 1, 0);
                }
                self.buckets[b] += 1;
            }
        }
    }

    /// Total accesses recorded (cold + warm).
    pub fn total(&self) -> u64 {
        self.cold + self.buckets.iter().sum::<u64>()
    }

    /// Predicted hit count in a fully-associative LRU cache of
    /// `capacity_lines` lines (must be a power of two — the bucket edges).
    pub fn predicted_hits(&self, capacity_lines: u64) -> u64 {
        assert!(
            capacity_lines.is_power_of_two(),
            "bucketed prediction is exact only at power-of-two capacities, got {capacity_lines}"
        );
        let k = capacity_lines.trailing_zeros() as usize;
        self.buckets.iter().take(k + 1).sum()
    }

    /// Predicted hit rate at `capacity_lines` (0.0 on an empty histogram).
    pub fn predicted_hit_rate(&self, capacity_lines: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.predicted_hits(capacity_lines) as f64 / total as f64
        }
    }

    /// The full hit-rate-vs-capacity curve: `(capacity_lines, hit_rate)`
    /// at every power-of-two capacity up to the largest observed distance.
    pub fn curve(&self) -> Vec<(u64, f64)> {
        let total = self.total();
        if total == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.buckets.len().max(1));
        let mut hits = 0u64;
        for (k, b) in self.buckets.iter().enumerate() {
            hits += b;
            out.push((1u64 << k, hits as f64 / total as f64));
        }
        out
    }

    pub fn merge(&mut self, other: &DistanceHistogram) {
        self.cold += other.cold;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_sim::Rng;

    /// O(n) reference: scan back through the access history counting
    /// distinct lines since the previous occurrence.
    #[derive(Default)]
    struct BruteForce {
        history: Vec<u64>,
    }

    impl BruteForce {
        fn access(&mut self, line: u64) -> Option<u64> {
            let r = self.history.iter().rposition(|&l| l == line).map(|pos| {
                let mut seen = std::collections::HashSet::new();
                for &l in &self.history[pos + 1..] {
                    seen.insert(l);
                }
                seen.len() as u64
            });
            self.history.push(line);
            r
        }
    }

    #[test]
    fn known_small_stream() {
        // a b c a b b a : classic example.
        let mut t = StackDistance::new();
        assert_eq!(t.access(0), None);
        assert_eq!(t.access(1), None);
        assert_eq!(t.access(2), None);
        assert_eq!(t.access(0), Some(2)); // b, c in between
        assert_eq!(t.access(1), Some(2)); // c, a
        assert_eq!(t.access(1), Some(0)); // immediate reuse
        assert_eq!(t.access(0), Some(1)); // b
        assert_eq!(t.live_lines(), 3);
    }

    #[test]
    fn matches_brute_force_on_random_streams() {
        let mut rng = Rng::new(0x5eed_cafe);
        for round in 0..4u64 {
            let universe = 1 + (rng.next_u64() % 96);
            let mut t = StackDistance::new();
            let mut oracle = BruteForce::default();
            for i in 0..3000 {
                // Mix of uniform-random and strided phases to exercise
                // compaction and long distances.
                let line = if i % 512 < 128 {
                    (i as u64) % (universe * 2)
                } else {
                    rng.next_u64() % universe
                };
                assert_eq!(
                    t.access(line),
                    oracle.access(line),
                    "round {round} access {i} line {line}"
                );
            }
        }
    }

    #[test]
    fn histogram_prediction_matches_exact_lru_hits() {
        // Direct check of the Mattson property: predicted hits at capacity
        // C equals the hits of a simulated fully-associative LRU of C lines.
        struct Lru {
            cap: usize,
            stack: Vec<u64>, // most recent last
        }
        impl Lru {
            fn access(&mut self, line: u64) -> bool {
                let hit = if let Some(p) = self.stack.iter().position(|&l| l == line) {
                    self.stack.remove(p);
                    true
                } else {
                    if self.stack.len() == self.cap {
                        self.stack.remove(0);
                    }
                    false
                };
                self.stack.push(line);
                hit
            }
        }

        let mut rng = Rng::new(42);
        let stream: Vec<u64> = (0..5000).map(|_| rng.next_u64() % 300).collect();

        let mut hist = DistanceHistogram::default();
        let mut t = StackDistance::new();
        for &l in &stream {
            hist.record(t.access(l));
        }
        for cap in [1u64, 4, 16, 64, 256, 1024] {
            let mut lru = Lru { cap: cap as usize, stack: Vec::new() };
            let sim_hits = stream.iter().filter(|&&l| lru.access(l)).count() as u64;
            assert_eq!(
                hist.predicted_hits(cap),
                sim_hits,
                "capacity {cap} lines: Mattson prediction must be exact for full-assoc LRU"
            );
        }
        assert_eq!(hist.total(), stream.len() as u64);
    }

    #[test]
    fn histogram_bucketing_and_merge() {
        assert_eq!(DistanceHistogram::bucket_of(0), 0);
        assert_eq!(DistanceHistogram::bucket_of(1), 1);
        assert_eq!(DistanceHistogram::bucket_of(2), 2);
        assert_eq!(DistanceHistogram::bucket_of(3), 2);
        assert_eq!(DistanceHistogram::bucket_of(4), 3);
        assert_eq!(DistanceHistogram::bucket_of(1023), 10);
        assert_eq!(DistanceHistogram::bucket_of(1024), 11);

        let mut a = DistanceHistogram::default();
        a.record(None);
        a.record(Some(0));
        a.record(Some(5));
        let mut b = DistanceHistogram::default();
        b.record(Some(5));
        b.record(Some(100));
        a.merge(&b);
        assert_eq!(a.cold, 1);
        assert_eq!(a.total(), 5);
        assert_eq!(a.buckets[DistanceHistogram::bucket_of(5)], 2);
        // Curve is monotone non-decreasing and ends at the warm-hit ratio.
        let curve = a.curve();
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((curve.last().unwrap().1 - 4.0 / 5.0).abs() < 1e-12);
    }
}
