//! # lva-prof — memory-hierarchy observatory for the co-design study
//!
//! Profiling instruments that answer the paper's capacity questions from a
//! *single* simulated run instead of a sweep:
//!
//! * [`mattson`] — exact LRU stack-distance computation (`O(log n)` per
//!   access) and log2-bucketed reuse-distance histograms whose
//!   [`DistanceHistogram::predicted_hits`] yields the hit rate at **every**
//!   power-of-two capacity from one address stream.
//! * [`profiler`] — an [`lva_sim::AccessSink`] that taps the per-level
//!   demand streams, attributes them to layers/phases, classifies every
//!   miss as compulsory / capacity / conflict (the 3C taxonomy), and
//!   validates predictions against the simulated set-associative caches.
//! * [`timeline`] — converts recorded [`lva_isa::PipeEvent`]s (phases and
//!   stall intervals) plus layer boundaries into a Chrome trace-event
//!   timeline ([`lva_trace::ChromeTrace`]) loadable in Perfetto.
//!
//! Everything here is pure observation: attaching a profiler or recording
//! pipeline events never changes a cycle count (asserted by tests).

#![forbid(unsafe_code)]
pub mod mattson;
pub mod profiler;
pub mod timeline;

pub use mattson::{DistanceHistogram, StackDistance};
pub use profiler::{attach, LevelProfile, MemProfile, MemProfiler, ProfilerHandle, ScopeProfile};
pub use timeline::{timeline, timeline_coarse, LayerSpan};
