//! Pipeline timeline export: turn a [`PipeEvent`] stream (plus optional
//! layer boundaries) into a Chrome trace-event timeline.
//!
//! Track layout, one swim lane per pipeline resource:
//!
//! * `layer`  — `B`/`E` pairs, one per network layer (caller-provided);
//! * `phase`  — `B`/`E` pairs from [`PipeEvent::PhaseBegin`]/`PhaseEnd`;
//! * `stall:<cause>` — one `X` (complete) event per attributed stall
//!   interval, a separate track per [`StallCause`] so the §IV stall
//!   breakdown reads directly off the timeline.
//!
//! Stall intervals arrive in issue order, which under the out-of-order
//! window is not globally time-sorted; events are sorted per track before
//! insertion so the result always satisfies
//! [`lva_trace::ChromeTrace::validate`].
//!
//! Two compactions keep the export Perfetto-sized without losing timeline
//! information:
//!
//! * touching or overlapping stall intervals of the same cause are merged
//!   into one `X` event — "is this resource stalled at cycle t" is
//!   unchanged, but per-instruction issue-width slivers (millions on a
//!   full-network run) collapse into contiguous blocks; callers with long
//!   streams can additionally absorb sub-resolution gaps via
//!   [`timeline_coarse`];
//! * a phase left open because the recorder hit its event cap
//!   ([`lva_isa::Machine::MAX_PIPE_EVENTS`]) is closed at the last
//!   recorded timestamp, so truncated streams still validate.

use lva_isa::PipeEvent;
use lva_trace::ChromeTrace;

/// A closed layer interval: `(name, start_cycle, end_cycle)`.
pub type LayerSpan = (String, u64, u64);

/// Build a validated timeline from recorded pipeline events.
///
/// `layers` may be empty (kernel-level runs have no layer structure).
pub fn timeline(events: &[PipeEvent], layers: &[LayerSpan]) -> ChromeTrace {
    timeline_coarse(events, layers, 0)
}

/// Like [`timeline`], but absorb gaps shorter than `resolution` cycles
/// between same-cause stall intervals.
///
/// Full-network runs emit one issue-width sliver per instruction — millions
/// of `X` events no viewer can render and no artifact store wants. Gaps
/// below the chosen resolution are invisible at any usable zoom, so
/// coalescing across them bounds the export to roughly
/// `total_cycles / resolution` events per track while leaving every stall
/// cycle inside some rendered interval. `resolution == 0` is exact.
pub fn timeline_coarse(events: &[PipeEvent], layers: &[LayerSpan], resolution: u64) -> ChromeTrace {
    let mut t = ChromeTrace::new();

    for (name, start, end) in layers {
        t.begin("layer", name, *start);
        t.end("layer", (*end).max(*start));
    }

    // Phases nest and are recorded in order, so B/E pass through directly.
    // If the recorder's event cap truncated the stream mid-phase, close the
    // dangling begins at the last timestamp seen so the trace validates.
    let mut open_phases = 0usize;
    let mut last_ts = 0u64;
    for ev in events {
        match ev {
            PipeEvent::PhaseBegin { phase, at } => {
                t.begin("phase", phase.name(), *at);
                open_phases += 1;
                last_ts = last_ts.max(*at);
            }
            PipeEvent::PhaseEnd { at, .. } => {
                t.end("phase", *at);
                open_phases = open_phases.saturating_sub(1);
                last_ts = last_ts.max(*at);
            }
            PipeEvent::Stall { end, .. } => last_ts = last_ts.max(*end),
        }
    }
    for _ in 0..open_phases {
        t.end("phase", last_ts);
    }

    // Stalls: bucket per cause, then sort each bucket by start time.
    let mut by_cause: Vec<(&'static str, Vec<(u64, u64)>)> = Vec::new();
    for ev in events {
        if let PipeEvent::Stall { cause, start, end } = ev {
            let name = cause.name();
            let bucket = match by_cause.iter_mut().find(|(n, _)| *n == name) {
                Some((_, b)) => b,
                None => {
                    by_cause.push((name, Vec::new()));
                    &mut by_cause.last_mut().expect("just pushed").1
                }
            };
            bucket.push((*start, *end));
        }
    }
    for (name, mut intervals) in by_cause {
        intervals.sort_unstable();
        let track = format!("stall:{name}");
        // Merge touching/overlapping intervals (plus sub-resolution gaps):
        // same stalled-at-cycle-t answer at the rendered scale, a fraction
        // of the events.
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (start, end) in intervals {
            match merged.last_mut() {
                Some((_, e)) if start <= e.saturating_add(resolution) => *e = (*e).max(end),
                _ => merged.push((start, end)),
            }
        }
        for (start, end) in merged {
            t.complete(&track, name, start, end - start);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lva_isa::{KernelPhase, Machine, MachineConfig};

    #[test]
    fn recorded_run_yields_valid_trace() {
        let mut m = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
        m.record_pipe_events();
        let a = m.mem.alloc(4096);
        let vl = m.setvl(64);
        m.phase(KernelPhase::Pack, |m| {
            for i in 0..16 {
                m.vle(0, a.addr(i * 64), vl);
                m.vse(0, a.addr(i * 64), vl);
            }
        });
        m.phase(KernelPhase::Gemm, |m| {
            m.vbroadcast(0, 1.0, vl);
            for _ in 0..8 {
                m.vfmacc_vf(1, 1.5, 0, vl);
            }
        });
        let events = m.take_pipe_events();
        let layers = vec![("L0 conv".to_string(), 0, m.cycles())];
        let t = timeline(&events, &layers);
        assert_eq!(t.validate(), Ok(()), "timeline must be well-formed");
        assert!(!t.is_empty());
        // Phase track is present with both phases; at least one stall track.
        let j = t.to_json();
        let text = j.to_string_compact();
        assert!(text.contains(r#""name":"phase""#));
        assert!(text.contains(r#""name":"layer""#));
        assert!(text.contains("stall:"));
        assert_eq!(lva_trace::Json::parse(&text).expect("parses"), j);
    }

    #[test]
    fn coarse_timeline_absorbs_sub_resolution_gaps() {
        use lva_isa::StallCause;
        // Three mem-latency slivers separated by 2-cycle gaps, then a far one.
        let ev = |start, end| PipeEvent::Stall { cause: StallCause::MemLatency, start, end };
        let events = vec![ev(0, 4), ev(6, 10), ev(12, 16), ev(1000, 1010)];
        let exact = timeline(&events, &[]);
        let coarse = timeline_coarse(&events, &[], 4);
        assert_eq!(exact.validate(), Ok(()));
        assert_eq!(coarse.validate(), Ok(()));
        // Exact keeps all four; coarse merges the first three (gaps of 2 < 4)
        // but not across the 984-cycle gap.
        let stalls = |t: &ChromeTrace| {
            let text = t.to_json().to_string_compact();
            text.matches(r#""ph":"X""#).count()
        };
        assert_eq!(stalls(&exact), 4);
        assert_eq!(stalls(&coarse), 2);
    }

    #[test]
    fn truncated_phase_stream_still_validates() {
        use lva_isa::KernelPhase;
        // A Begin with no End, as the recorder cap produces mid-phase.
        let events = vec![
            PipeEvent::PhaseBegin { phase: KernelPhase::Gemm, at: 5 },
            PipeEvent::Stall { cause: lva_isa::StallCause::MemLatency, start: 5, end: 30 },
        ];
        let t = timeline(&events, &[]);
        assert_eq!(t.validate(), Ok(()), "dangling phase must be closed");
    }

    #[test]
    fn empty_events_yield_empty_valid_trace() {
        let t = timeline(&[], &[]);
        assert!(t.is_empty());
        assert_eq!(t.validate(), Ok(()));
    }
}
