//! # longvec-cnn
//!
//! A from-scratch Rust reproduction of *"Accelerating CNN inference on long
//! vector architectures via co-design"* (Gupta, Papadopoulou, Pericàs —
//! IPDPS 2023): a cycle-approximate vector-machine simulator standing in
//! for gem5 and the A64FX, the paper's im2col+GEMM and Winograd kernels
//! written against a vector-length-agnostic intrinsics API, the YOLOv3 /
//! YOLOv3-tiny / VGG16 network models, and an experiment harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use longvec_cnn::prelude::*;
//!
//! // A RISC-V Vector machine: 2048-bit registers, 8 lanes, 1 MB L2.
//! let mut machine = Machine::new(MachineConfig::rvv_gem5(2048, 8, 1 << 20));
//!
//! // One convolutional layer, lowered to GEMM and run with the paper's
//! // optimized 3-loop kernel (Fig. 2).
//! let p = ConvParams { in_c: 8, in_h: 16, in_w: 16, out_c: 16, k: 3, stride: 1, pad: 1 };
//! let input = Tensor::random(&mut machine, Shape::new(8, 16, 16), 1);
//! let (m, n, k) = p.gemm_mnk();
//! let weights = Matrix::random(&mut machine, m, k, 2);
//! let col = machine.mem.alloc(p.workspace_words());
//! let out = machine.mem.alloc(m * n);
//! conv_im2col_gemm(
//!     &mut machine, GemmVariant::opt3(), &p, &input, weights.buf, col, out, None,
//! );
//! println!("layer took {} cycles", machine.cycles());
//! assert!(machine.cycles() > 0);
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | memory arena, caches, prefetchers (gem5 substitute) |
//! | [`isa`] | VLA vector engine: RVV/SVE profiles, intrinsics, timing |
//! | [`tensor`] | CHW tensors and matrices over simulated memory |
//! | [`kernels`] | im2col, GEMM (naive / 3-loop / BLIS 6-loop), aux kernels |
//! | [`winograd`] | Cook–Toom generator + F(6,3) VLA implementation |
//! | [`fft`] | FFT convolution (the §II-C large-kernel algorithm) |
//! | [`nn`] | Darknet-substitute framework and the paper's models |
//! | [`roofline`] | arithmetic intensity / %peak accounting (Table IV) |
//! | [`core`] | co-design experiment API (hardware x software x workload) |
//!
//! See DESIGN.md for the system inventory and EXPERIMENTS.md for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]
pub use lva_core as core;
pub use lva_fft as fft;
pub use lva_isa as isa;
pub use lva_kernels as kernels;
pub use lva_nn as nn;
pub use lva_roofline as roofline;
pub use lva_sim as sim;
pub use lva_tensor as tensor;
pub use lva_winograd as winograd;

/// The most commonly used items in one import.
pub mod prelude {
    pub use lva_core::{scaled_input, Experiment, HwTarget, ModelId, RunSummary, Table, Workload};
    pub use lva_fft::{conv_fft_vla, FftConvPlan};
    pub use lva_isa::{IsaKind, KernelPhase, Machine, MachineConfig, Platform};
    pub use lva_kernels::{conv_im2col_gemm, BlockSizes, ConvParams, GemmVariant, DEFAULT_UNROLL};
    pub use lva_nn::{ConvAlgo, ConvPolicy, LayerSpec, NetReport, Network};
    pub use lva_sim::{Buf, Memory};
    pub use lva_tensor::{approx_eq, host_random, Matrix, Shape, Tensor};
    pub use lva_winograd::{f6x3, winograd_conv_vla, WinogradPlan, WinogradTransform};
}
