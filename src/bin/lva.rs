//! `lva` — command-line driver for the longvec-cnn co-design simulator.
//!
//! ```text
//! lva models                               list the built-in networks
//! lva run [options]                        simulate one inference
//! lva sweep --axis vlen|l2|lanes [options] sweep one hardware axis
//! lva cfg <file> [options]                 load a Darknet .cfg and simulate it
//! lva export-cfg --model <m> [-o file]     write a model as Darknet cfg text
//! ```
//!
//! Common options:
//! `--model yolov3|yolov3-tiny|vgg16`, `--platform rvv|sve|a64fx`,
//! `--vlen BITS`, `--lanes N`, `--l2 MB`, `--gemm naive|opt3|opt6`,
//! `--winograd`, `--div N`, `--layers N`.

use longvec_cnn::core::energy::EnergyModel;
use longvec_cnn::core::report::fmt_cycles;
use longvec_cnn::prelude::*;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "lva — long-vector CNN co-design simulator

USAGE:
  lva models
  lva run        [--model M] [--platform P] [--vlen BITS] [--lanes N] [--l2 MB]
                 [--gemm V] [--winograd] [--div N] [--layers N] [--per-layer]
                 [--energy] [--frames N] [--stats]
  lva sweep      --axis vlen|l2|lanes [same options as run]
  lva cfg FILE   [--platform P] [--vlen BITS] ... (runs the parsed network)
  lva export-cfg --model M [-o FILE]

DEFAULTS: --model yolov3-tiny --platform rvv --vlen 2048 --lanes 8 --l2 1
          --gemm opt3 --div 4"
    );
    exit(2)
}

#[derive(Clone)]
struct Cli {
    model: ModelId,
    platform: String,
    vlen: usize,
    lanes: usize,
    l2_mb: usize,
    gemm: GemmVariant,
    winograd: bool,
    div: usize,
    layers: Option<usize>,
    per_layer: bool,
    energy: bool,
    stats: bool,
    frames: usize,
    axis: Option<String>,
    file: Option<String>,
    out: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            model: ModelId::Yolov3Tiny,
            platform: "rvv".into(),
            vlen: 2048,
            lanes: 8,
            l2_mb: 1,
            gemm: GemmVariant::opt3(),
            winograd: false,
            div: 4,
            layers: None,
            per_layer: false,
            energy: false,
            stats: false,
            frames: 1,
            axis: None,
            file: None,
            out: None,
        }
    }
}

fn parse_model(s: &str) -> ModelId {
    match s {
        "yolov3" => ModelId::Yolov3,
        "yolov3-tiny" | "tiny" => ModelId::Yolov3Tiny,
        "vgg16" | "vgg" => ModelId::Vgg16,
        "resnet50" | "resnet" => ModelId::Resnet50,
        "mobilenet" | "mobilenet-v1" => ModelId::MobilenetV1,
        other => {
            eprintln!("unknown model `{other}` (yolov3 | yolov3-tiny | vgg16 | resnet50)");
            exit(2)
        }
    }
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli::default();
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2)
            })
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => cli.model = parse_model(&need(&mut it, "--model")),
            "--platform" => cli.platform = need(&mut it, "--platform"),
            "--vlen" => cli.vlen = need(&mut it, "--vlen").parse().unwrap_or_else(|_| usage()),
            "--lanes" => cli.lanes = need(&mut it, "--lanes").parse().unwrap_or_else(|_| usage()),
            "--l2" => cli.l2_mb = need(&mut it, "--l2").parse().unwrap_or_else(|_| usage()),
            "--gemm" => {
                cli.gemm = match need(&mut it, "--gemm").as_str() {
                    "naive" => GemmVariant::Naive,
                    "opt3" => GemmVariant::opt3(),
                    "opt6" => GemmVariant::opt6(),
                    _ => usage(),
                }
            }
            "--winograd" => cli.winograd = true,
            "--div" => cli.div = need(&mut it, "--div").parse().unwrap_or_else(|_| usage()),
            "--layers" => {
                cli.layers = Some(need(&mut it, "--layers").parse().unwrap_or_else(|_| usage()));
            }
            "--per-layer" => cli.per_layer = true,
            "--energy" => cli.energy = true,
            "--stats" => cli.stats = true,
            "--frames" => {
                cli.frames = need(&mut it, "--frames").parse().unwrap_or_else(|_| usage());
            }
            "--axis" => cli.axis = Some(need(&mut it, "--axis")),
            "-o" | "--out" => cli.out = Some(need(&mut it, "-o")),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && cli.file.is_none() => {
                cli.file = Some(other.to_string());
            }
            other => {
                eprintln!("unknown option `{other}`");
                usage()
            }
        }
    }
    cli
}

fn hw_target(cli: &Cli) -> HwTarget {
    let l2 = cli.l2_mb << 20;
    match cli.platform.as_str() {
        "rvv" | "riscv" => {
            HwTarget::RvvGem5 { vlen_bits: cli.vlen, lanes: cli.lanes, l2_bytes: l2 }
        }
        "sve" | "arm" => HwTarget::SveGem5 { vlen_bits: cli.vlen.min(2048), l2_bytes: l2 },
        "a64fx" => HwTarget::A64fx,
        other => {
            eprintln!("unknown platform `{other}` (rvv | sve | a64fx)");
            exit(2)
        }
    }
}

fn policy(cli: &Cli) -> ConvPolicy {
    if cli.winograd {
        ConvPolicy::winograd_default(cli.gemm)
    } else {
        ConvPolicy::gemm_only(cli.gemm)
    }
}

fn print_summary(cli: &Cli, hw: HwTarget, s: &RunSummary) {
    println!("platform : {}", hw.describe());
    println!("cycles   : {}", fmt_cycles(s.cycles));
    println!("work     : {} Mflop", s.flops / 1_000_000);
    println!("avg VL   : {:.0} bits", s.avg_vlen_bits);
    println!("L2 miss  : {:.1}%", 100.0 * s.l2_miss_rate);
    if cli.per_layer {
        println!("\n{:<5} {:<18} {:>13} {:>7}", "layer", "type", "cycles", "%");
        for l in &s.report.layers {
            println!(
                "{:<5} {:<18} {:>13} {:>6.1}%",
                l.index,
                l.desc,
                l.cycles,
                100.0 * l.cycles as f64 / s.cycles as f64
            );
        }
    }
    println!("\nkernel phases:");
    for (phase, c) in s.report.phases.breakdown() {
        println!("  {:<16} {:>5.1}%", phase.name(), 100.0 * c as f64 / s.cycles as f64);
    }
    if cli.stats {
        println!("\n{}", s.dump_stats());
    }
    if cli.energy {
        let e = EnergyModel::default().estimate(&s.report, hw.l2_bytes());
        println!(
            "\nenergy   : {:.2} mJ ({:.2} compute + {:.2} memory + {:.2} static), EDP {:.1} uJ*s",
            e.total_j() * 1e3,
            e.compute_j * 1e3,
            e.memory_j * 1e3,
            e.static_j * 1e3,
            e.edp() * 1e6
        );
    }
}

fn cmd_models() {
    println!("{:<12} {:<8} layers", "model", "input");
    for model in [
        ModelId::Yolov3,
        ModelId::Yolov3Tiny,
        ModelId::Vgg16,
        ModelId::Resnet50,
        ModelId::MobilenetV1,
    ] {
        let (specs, shape) = model.build(model.native_input());
        let convs = longvec_cnn::nn::network::conv_params_list(&specs, shape).len();
        println!(
            "{:<12} {:<8} {} ({} convolutional)",
            model.name(),
            format!("{}px", model.native_input()),
            specs.len(),
            convs
        );
    }
}

fn cmd_run(cli: &Cli) {
    let hw = hw_target(cli);
    let workload = Workload {
        model: cli.model,
        input_hw: scaled_input(cli.model, cli.div),
        layer_limit: cli.layers,
    };
    let e = Experiment::new(hw, policy(cli), workload);
    println!("workload : {}\n", workload.describe());
    if cli.frames > 1 {
        let s = e.run_stream(cli.frames);
        for (i, c) in s.per_frame_cycles.iter().enumerate() {
            println!("frame {i}: {} cycles", fmt_cycles(*c));
        }
        println!();
        print_summary(cli, hw, &s.steady);
    } else {
        let s = e.run();
        print_summary(cli, hw, &s);
    }
}

fn cmd_sweep(cli: &Cli) {
    let axis = cli.axis.clone().unwrap_or_else(|| usage());
    let workload = Workload {
        model: cli.model,
        input_hw: scaled_input(cli.model, cli.div),
        layer_limit: cli.layers,
    };
    let points: Vec<Cli> = match axis.as_str() {
        "vlen" => {
            let max = if cli.platform == "rvv" { 16384 } else { 2048 };
            let mut v = Vec::new();
            let mut vlen = 512;
            while vlen <= max {
                v.push(Cli { vlen, ..cli.clone() });
                vlen *= 2;
            }
            v
        }
        "l2" => [1usize, 4, 16, 64, 256]
            .into_iter()
            .map(|mb| Cli { l2_mb: mb, ..cli.clone() })
            .collect(),
        "lanes" => [2usize, 4, 8].into_iter().map(|lanes| Cli { lanes, ..cli.clone() }).collect(),
        _ => usage(),
    };
    println!("sweeping {axis} for {}\n", workload.describe());
    let mut base = None;
    for point in points {
        let hw = hw_target(&point);
        let s = Experiment::new(hw, policy(&point), workload).run();
        let b = *base.get_or_insert(s.cycles);
        println!(
            "{:<46} {:>14} cycles   {:>6.2}x",
            hw.describe(),
            fmt_cycles(s.cycles),
            b as f64 / s.cycles as f64
        );
    }
}

fn cmd_cfg(cli: &Cli) {
    let path = cli.file.clone().unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    let (specs, shape) = longvec_cnn::nn::parse_cfg(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    println!("parsed {} layers, input {}x{}x{}\n", specs.len(), shape.c, shape.h, shape.w);
    // Run it on the requested machine.
    use longvec_cnn::nn::network::estimate_arena_words;
    let pol = policy(cli);
    let mut cfg = hw_target(cli).machine_config();
    cfg.arena_mib = (estimate_arena_words(&specs, shape, &pol) * 4 / (1 << 20) + 32).max(64);
    let mut machine = Machine::new(cfg);
    let mut net = Network::build(&mut machine, &specs, shape, pol, 42);
    machine.reset_timing();
    let image = host_random(shape.len(), 7);
    let report = net.run(&mut machine, &image);
    println!("{:<5} {:<18} {:>13}", "layer", "type", "cycles");
    for l in &report.layers {
        println!("{:<5} {:<18} {:>13}", l.index, l.desc, l.cycles);
    }
    println!("\ntotal: {} cycles", fmt_cycles(report.cycles));
}

fn cmd_export_cfg(cli: &Cli) {
    let (specs, shape) = cli.model.build(cli.model.native_input());
    let text = longvec_cnn::nn::to_cfg(&specs, shape);
    match &cli.out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            println!("wrote {} ({} layers)", path, specs.len());
        }
        None => print!("{text}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { usage() };
    let cli = parse_args(rest);
    match cmd.as_str() {
        "models" => cmd_models(),
        "run" => cmd_run(&cli),
        "sweep" => cmd_sweep(&cli),
        "cfg" => cmd_cfg(&cli),
        "export-cfg" => cmd_export_cfg(&cli),
        _ => usage(),
    }
}
