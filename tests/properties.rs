//! Randomized property tests over the whole stack: the optimized kernels
//! must agree with the scalar references for *arbitrary* shapes, vector
//! lengths and strides, not just the sizes the paper uses. Inputs are drawn
//! from the workspace's deterministic [`lva_sim::Rng`], so every run checks
//! the same cases and failures reproduce exactly.

use longvec_cnn::kernels::gemm::{gemm, GemmWorkspace};
use longvec_cnn::kernels::im2col::im2col_vec;
use longvec_cnn::kernels::reference::{conv_direct_ref, gemm_ref, im2col_ref};
use longvec_cnn::prelude::*;
use longvec_cnn::winograd::winograd_conv_vla;
use lva_sim::Rng;

fn rvv_machine(vlen: usize) -> Machine {
    let mut cfg = MachineConfig::rvv_gem5(vlen, 8, 1 << 20);
    cfg.arena_mib = 64;
    Machine::new(cfg)
}

fn sve_machine(vlen: usize) -> Machine {
    let mut cfg = MachineConfig::sve_gem5(vlen, 1 << 20);
    cfg.arena_mib = 64;
    Machine::new(cfg)
}

/// Every GEMM variant equals the reference for arbitrary M, N, K and VL.
#[test]
fn gemm_variants_match_reference() {
    let mut rng = Rng::new(0x6e);
    for case in 0..24 {
        let mm = rng.gen_index(1, 24);
        let nn = rng.gen_index(1, 80);
        let kk = rng.gen_index(1, 40);
        let vlen = 32usize << rng.gen_range(4, 9); // 512..16384 bits
        let seed = rng.gen_range(0, 1000);
        let mut m = rvv_machine(vlen);
        let a = Matrix::random(&mut m, mm, kk, seed);
        let b = Matrix::random(&mut m, kk, nn, seed + 1);
        let c0 = host_random(mm * nn, seed + 2);
        let c = Matrix::from_host(&mut m, mm, nn, &c0);
        let variant = match case % 3 {
            0 => GemmVariant::Naive,
            1 => GemmVariant::Opt3 { unroll: 1 + (seed % 20) as usize },
            _ => GemmVariant::Opt6 {
                unroll: 1 + (seed % 18) as usize,
                blocks: BlockSizes { m: 8, n: 32, k: 8 },
            },
        };
        let ws = match variant {
            GemmVariant::Opt6 { blocks, .. } => Some(GemmWorkspace::alloc(&mut m, blocks)),
            _ => None,
        };
        gemm(&mut m, variant, mm, nn, kk, 1.0, a.buf, b.buf, c.buf, ws.as_ref());
        let mut want = c0;
        gemm_ref(mm, nn, kk, 1.0, &a.to_host(&m), &b.to_host(&m), &mut want);
        assert!(
            approx_eq(&c.to_host(&m), &want, 1e-3, 1e-4),
            "gemm {variant:?} mismatch for {mm}x{nn}x{kk} at vlen {vlen}"
        );
    }
}

/// Vectorized im2col equals the reference for arbitrary geometry.
#[test]
fn im2col_matches_reference() {
    let mut rng = Rng::new(0x12c);
    let mut cases = 0;
    while cases < 24 {
        let in_c = rng.gen_index(1, 5);
        let in_h = rng.gen_index(3, 16);
        let in_w = rng.gen_index(3, 16);
        let k = rng.gen_index(1, 4).min(in_h).min(in_w);
        let stride = rng.gen_index(1, 3);
        let pad = if rng.gen_bool(0.5) { 0 } else { k / 2 };
        let seed = rng.gen_range(0, 1000);
        let p = ConvParams { in_c, in_h, in_w, out_c: 1, k, stride, pad };
        let (oh, ow) = p.out_hw();
        if oh == 0 || ow == 0 {
            continue;
        }
        cases += 1;
        let mut m = rvv_machine(1024);
        let img = Tensor::random(&mut m, Shape::new(in_c, in_h, in_w), seed);
        let col = m.mem.alloc(in_c * k * k * oh * ow);
        im2col_vec(&mut m, &p, &img, col);
        let want = im2col_ref(&p, &img.to_host(&m));
        assert_eq!(&m.mem.slice(col)[..want.len()], &want[..]);
    }
}

/// VLA Winograd equals direct convolution for arbitrary 3x3 layers.
#[test]
fn winograd_matches_direct() {
    let mut rng = Rng::new(0x816);
    let mut cases = 0;
    while cases < 24 {
        let in_c = rng.gen_index(1, 8);
        let out_c = rng.gen_index(1, 8);
        let hw = rng.gen_index(3, 20);
        let stride = rng.gen_index(1, 3);
        let seed = rng.gen_range(0, 1000);
        let p = ConvParams { in_c, in_h: hw, in_w: hw, out_c, k: 3, stride, pad: 1 };
        let (oh, ow) = p.out_hw();
        if oh == 0 || ow == 0 {
            continue;
        }
        cases += 1;
        let vlen = [512, 1024, 2048][rng.gen_index(0, 3)];
        let mut m = sve_machine(vlen);
        let img = Tensor::random(&mut m, Shape::new(in_c, hw, hw), seed);
        let w = Matrix::random(&mut m, out_c, in_c * 9, seed + 1);
        let out = m.mem.alloc(out_c * oh * ow);
        let mut plan = WinogradPlan::new(&mut m, p, w.buf);
        winograd_conv_vla(&mut m, &mut plan, &img, out);
        let want = conv_direct_ref(&p, &img.to_host(&m), &w.to_host(&m));
        assert!(
            approx_eq(m.mem.slice(out), &want, 1e-2, 1e-2),
            "winograd mismatch for {p:?} at vlen {vlen}"
        );
    }
}

/// Cook-Toom transforms generated for arbitrary small F(m, r) satisfy
/// the convolution identity.
#[test]
fn cooktoom_identity_holds() {
    use longvec_cnn::winograd::{Rat, WinogradTransform};
    let mut rng = Rng::new(0xc007);
    for _ in 0..24 {
        let m_out = rng.gen_index(2, 7);
        let seed = rng.gen_range(0, 1000);
        // r = 3 with points 0, ±1, ±2, ±1/2, ±3 as needed.
        let pts = [
            Rat::int(0),
            Rat::int(1),
            Rat::int(-1),
            Rat::int(2),
            Rat::int(-2),
            Rat::new(1, 2),
            Rat::new(-1, 2),
            Rat::int(3),
        ];
        let n = m_out + 2;
        let t = WinogradTransform::generate(m_out, 3, &pts[..n - 1]);
        let d = host_random(n, seed);
        let g = host_random(3, seed + 1);
        let y = t.correlate_1d(&d, &g);
        for (i, yv) in y.iter().enumerate() {
            let want: f32 = (0..3).map(|k| g[k] * d[i + k]).sum();
            assert!((yv - want).abs() < 2e-2, "F({m_out},3) row {i}: {yv} vs {want}");
        }
    }
}

/// Timing sanity for arbitrary GEMMs: cycle counts are positive,
/// deterministic, and flops are exactly 2*M*N*K.
#[test]
fn gemm_timing_invariants() {
    let mut rng = Rng::new(0x717);
    for _ in 0..24 {
        let mm = rng.gen_index(1, 16);
        let nn = rng.gen_index(1, 64);
        let kk = rng.gen_index(1, 32);
        let seed = rng.gen_range(0, 100);
        let run = || {
            let mut m = rvv_machine(2048);
            let a = Matrix::random(&mut m, mm, kk, seed);
            let b = Matrix::random(&mut m, kk, nn, seed + 1);
            let c = Matrix::alloc(&mut m, mm, nn);
            gemm(&mut m, GemmVariant::opt3(), mm, nn, kk, 1.0, a.buf, b.buf, c.buf, None);
            (m.cycles(), m.stats.vec_flops)
        };
        let (t1, f1) = run();
        let (t2, f2) = run();
        assert_eq!(t1, t2);
        assert_eq!(f1, f2);
        assert!(t1 > 0);
        assert_eq!(f1, 2 * (mm * nn * kk) as u64);
    }
}
