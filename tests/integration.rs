//! Cross-crate integration tests: whole-pipeline behaviour that no single
//! crate can check on its own.

use longvec_cnn::nn::network::estimate_arena_words;
use longvec_cnn::nn::{vgg16, yolov3, yolov3_tiny};
use longvec_cnn::prelude::*;

/// Build + run a network on a machine config, returning (report, output).
fn run_net(
    mut cfg: MachineConfig,
    specs: &[LayerSpec],
    shape: Shape,
    policy: ConvPolicy,
    seed: u64,
) -> (NetReport, Vec<f32>) {
    cfg.arena_mib = (estimate_arena_words(specs, shape, &policy) * 4 / (1 << 20) + 32).max(64);
    let mut machine = Machine::new(cfg);
    let mut net = Network::build(&mut machine, specs, shape, policy, seed);
    machine.reset_timing();
    let image = host_random(shape.len(), seed ^ 0xabcd);
    let report = net.run(&mut machine, &image);
    let out = net.output().to_host(&machine);
    (report, out)
}

#[test]
fn simulation_is_deterministic() {
    let (specs, shape) = yolov3_tiny(64);
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let (a, out_a) = run_net(MachineConfig::rvv_gem5(1024, 8, 1 << 20), &specs, shape, policy, 5);
    let (b, out_b) = run_net(MachineConfig::rvv_gem5(1024, 8, 1 << 20), &specs, shape, policy, 5);
    assert_eq!(a.cycles, b.cycles, "cycle counts must be reproducible");
    assert_eq!(out_a, out_b, "outputs must be bit-identical");
    assert_eq!(a.mem.l2.misses, b.mem.l2.misses);
}

#[test]
fn rvv_and_sve_compute_identical_results() {
    // The same network on different ISAs must agree functionally: the
    // timing model differs, the numerics must not.
    let (specs, shape) = yolov3_tiny(64);
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let (ra, out_rvv) = run_net(MachineConfig::rvv_gem5(512, 8, 1 << 20), &specs, shape, policy, 5);
    let (rb, out_sve) = run_net(MachineConfig::sve_gem5(512, 1 << 20), &specs, shape, policy, 5);
    assert_eq!(out_rvv, out_sve, "ISA must not change the mathematics");
    assert_ne!(ra.cycles, rb.cycles, "the platforms should time differently");
}

#[test]
fn vector_length_is_functionally_transparent() {
    // VLA portability: the same binary semantics across hardware vector
    // lengths (only reassociation-free kernels are bit-identical; GEMM
    // accumulates per-element in the same order across VLs here because
    // the k-loop order is fixed, so outputs match exactly).
    let (specs, shape) = yolov3_tiny(64);
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let (_, out_512) = run_net(MachineConfig::rvv_gem5(512, 8, 1 << 20), &specs, shape, policy, 5);
    let (_, out_16384) =
        run_net(MachineConfig::rvv_gem5(16384, 8, 1 << 20), &specs, shape, policy, 5);
    assert_eq!(out_512, out_16384);
}

#[test]
fn winograd_policy_matches_gemm_policy_outputs() {
    let (specs, shape) = yolov3_tiny(64);
    let gemm = ConvPolicy::gemm_only(GemmVariant::opt6());
    let mut wino = ConvPolicy::winograd_default(GemmVariant::opt6());
    wino.winograd_stride2 = true;
    let (_, out_g) = run_net(MachineConfig::sve_gem5(1024, 1 << 20), &specs, shape, gemm, 5);
    let (_, out_w) = run_net(MachineConfig::sve_gem5(1024, 1 << 20), &specs, shape, wino, 5);
    assert!(
        approx_eq(&out_w, &out_g, 5e-2, 5e-2),
        "algorithm choice must not change the inference result"
    );
}

#[test]
fn experiment_api_runs_all_platforms() {
    let workload = Workload { model: ModelId::Yolov3, input_hw: 32, layer_limit: Some(4) };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    for hw in [
        HwTarget::RvvGem5 { vlen_bits: 1024, lanes: 4, l2_bytes: 1 << 20 },
        HwTarget::SveGem5 { vlen_bits: 1024, l2_bytes: 1 << 20 },
        HwTarget::A64fx,
    ] {
        let s = Experiment::new(hw, policy, workload).run();
        assert!(s.cycles > 0, "{hw:?} produced no cycles");
        assert!(s.flops > 0);
    }
}

#[test]
fn bigger_l2_never_slows_the_gemm_workload() {
    let workload = Workload { model: ModelId::Yolov3, input_hw: 64, layer_limit: Some(8) };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let mut last = u64::MAX;
    for l2 in [1usize << 20, 8 << 20, 64 << 20] {
        let s = Experiment::new(
            HwTarget::RvvGem5 { vlen_bits: 4096, lanes: 8, l2_bytes: l2 },
            policy,
            workload,
        )
        .run();
        assert!(s.cycles <= last, "L2 {l2}: {} > {last}", s.cycles);
        last = s.cycles;
    }
}

#[test]
fn vgg16_inference_produces_probabilities() {
    let (specs, shape) = vgg16(32);
    let policy = ConvPolicy::winograd_default(GemmVariant::opt3());
    let (report, out) = run_net(MachineConfig::sve_gem5(2048, 1 << 20), &specs, shape, policy, 3);
    assert_eq!(out.len(), 1000);
    assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-4, "softmax must normalize");
    assert!(out.iter().all(|&p| (0.0..=1.0).contains(&p)));
    assert_eq!(report.layers.len(), 25);
}

#[test]
fn yolov3_full_network_runs_at_small_scale() {
    let (specs, shape) = yolov3(32);
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let (report, out) =
        run_net(MachineConfig::rvv_gem5(2048, 8, 1 << 20), &specs, shape, policy, 3);
    assert_eq!(report.layers.len(), 107);
    assert!(out.iter().all(|v| v.is_finite()), "activations must stay finite");
    // All three yolo heads produce 255-channel maps.
    let heads: Vec<_> =
        report.layers.iter().filter(|l| l.desc == "yolo").map(|l| l.out_shape.c).collect();
    assert_eq!(heads, vec![255, 255, 255]);
}

#[test]
fn paper_sanity_longer_vectors_and_caches_help() {
    // The two §VI headline directions in one test, at smoke-test scale.
    let workload = Workload { model: ModelId::Yolov3, input_hw: 64, layer_limit: Some(8) };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let short = Experiment::new(
        HwTarget::RvvGem5 { vlen_bits: 512, lanes: 8, l2_bytes: 1 << 20 },
        policy,
        workload,
    )
    .run();
    let long = Experiment::new(
        HwTarget::RvvGem5 { vlen_bits: 8192, lanes: 8, l2_bytes: 1 << 20 },
        policy,
        workload,
    )
    .run();
    assert!(long.cycles < short.cycles, "longer vectors must win (Fig. 6)");
    assert!(
        long.avg_vlen_bits > short.avg_vlen_bits,
        "consumed vector length must track the hardware length (Table III)"
    );
}

#[test]
fn naive_baseline_is_much_slower_end_to_end() {
    let workload = Workload { model: ModelId::Yolov3Tiny, input_hw: 64, layer_limit: None };
    let naive = Experiment::new(
        HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 },
        ConvPolicy::gemm_only(GemmVariant::Naive),
        workload,
    )
    .run();
    let opt = Experiment::new(
        HwTarget::RvvGem5 { vlen_bits: 2048, lanes: 8, l2_bytes: 1 << 20 },
        ConvPolicy::gemm_only(GemmVariant::opt3()),
        workload,
    )
    .run();
    let speedup = naive.cycles as f64 / opt.cycles as f64;
    // At this smoke-test scale (64 px) the factor is smaller than the
    // paper-scale 14x measured by exp-headline; just require a wide margin.
    assert!(speedup > 3.0, "§VI-A order of magnitude: got {speedup:.1}x");
}
