//! Full YOLOv3-tiny inference on a simulated RISC-V Vector machine, with a
//! per-layer cycle report and the §II-B kernel-phase breakdown.
//!
//! ```sh
//! cargo run --release --example yolo_tiny_inference
//! ```

use longvec_cnn::nn::network::estimate_arena_words;
use longvec_cnn::nn::yolov3_tiny;
use longvec_cnn::prelude::*;

fn main() {
    let (specs, shape) = yolov3_tiny(160);
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());

    let mut cfg = MachineConfig::rvv_gem5(4096, 8, 1 << 20);
    cfg.arena_mib = (estimate_arena_words(&specs, shape, &policy) * 4 / (1 << 20) + 32).max(64);
    let mut machine = Machine::new(cfg);

    let mut net = Network::build(&mut machine, &specs, shape, policy, 42);
    machine.reset_timing(); // exclude setup, as the paper does

    let image = host_random(shape.len(), 9);
    let report = net.run(&mut machine, &image);

    println!("YOLOv3-tiny @ {}x{} on RVV 4096b / 8 lanes / 1MB L2\n", shape.h, shape.w);
    println!("{:<5} {:<16} {:>13} {:>7}  out shape", "layer", "type", "cycles", "%");
    for l in &report.layers {
        println!(
            "{:<5} {:<16} {:>13} {:>6.1}%  {}x{}x{}",
            l.index,
            l.desc,
            l.cycles,
            100.0 * l.cycles as f64 / report.cycles as f64,
            l.out_shape.c,
            l.out_shape.h,
            l.out_shape.w
        );
    }
    println!("\ntotal: {} cycles for {} Mflop", report.cycles, report.flops() / 1_000_000);
    println!(
        "avg consumed vector length: {:.0} bits; L2 miss rate {:.1}%",
        report.vpu.avg_vlen_bits(),
        100.0 * report.mem.l2.miss_rate()
    );
    println!("\nkernel breakdown (§II-B):");
    for (phase, cycles) in report.phases.breakdown() {
        println!("  {:<14} {:>6.2}%", phase.name(), 100.0 * cycles as f64 / report.cycles as f64);
    }
}
