//! The fourth algorithm of §II-C: convolution through the frequency domain.
//! Runs one layer per kernel size through FFT and im2col+GEMM and shows how
//! the FFT's fixed transform cost amortizes as kernels grow.
//!
//! ```sh
//! cargo run --release --example fft_convolution
//! ```

use longvec_cnn::kernels::gemm::GemmWorkspace;
use longvec_cnn::kernels::reference::conv_direct_ref;
use longvec_cnn::prelude::*;

fn main() {
    println!("{:<10} {:>14} {:>14} {:>10}", "kernel", "gemm cycles", "fft cycles", "fft/gemm");
    for k in [3usize, 5, 7, 11] {
        let p = ConvParams { in_c: 8, in_h: 40, in_w: 40, out_c: 16, k, stride: 1, pad: k / 2 };
        let (mm, nn, kk) = p.gemm_mnk();

        // im2col + 6-loop GEMM.
        let mut m = Machine::new(MachineConfig::sve_gem5(2048, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 1);
        let w = Matrix::random(&mut m, mm, kk, 2);
        let col = m.mem.alloc(p.workspace_words());
        let out = m.mem.alloc(mm * nn);
        let ws = GemmWorkspace::alloc(&mut m, BlockSizes::TABLE2_BEST);
        m.reset_timing();
        conv_im2col_gemm(&mut m, GemmVariant::opt6(), &p, &img, w.buf, col, out, Some(&ws));
        let gemm_cycles = m.cycles();
        let want = conv_direct_ref(&p, &img.to_host(&m), &w.to_host(&m));
        assert!(approx_eq(m.mem.slice(out), &want, 1e-2, 1e-2));

        // FFT convolution.
        let mut m = Machine::new(MachineConfig::sve_gem5(2048, 1 << 20));
        let img = Tensor::random(&mut m, Shape::new(p.in_c, p.in_h, p.in_w), 1);
        let w = Matrix::random(&mut m, mm, kk, 2);
        let out = m.mem.alloc(mm * nn);
        let mut plan = FftConvPlan::new(&mut m, p, w.buf);
        m.reset_timing();
        conv_fft_vla(&mut m, &mut plan, &img, out);
        let fft_cycles = m.cycles();
        assert!(approx_eq(m.mem.slice(out), &want, 1e-2, 1e-2));

        println!(
            "{:<10} {:>14} {:>14} {:>9.2}x",
            format!("{k}x{k}"),
            gemm_cycles,
            fft_cycles,
            fft_cycles as f64 / gemm_cycles as f64
        );
    }
    println!("\nThe FFT's grid transforms are fixed-cost, so its relative overhead");
    println!("falls as the kernel grows (§II-C: 'FFT works best with large kernels');");
    println!("both algorithms verified against direct convolution.");
}
