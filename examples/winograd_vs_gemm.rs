//! Algorithm selection in action: one 3x3 stride-1 convolution executed
//! through im2col+GEMM and through the VLA Winograd pipeline on the A64FX
//! profile, with per-phase cycle accounting and cross-validation of both
//! results against direct convolution (§VII-A).
//!
//! ```sh
//! cargo run --release --example winograd_vs_gemm
//! ```

use longvec_cnn::kernels::gemm::GemmWorkspace;
use longvec_cnn::kernels::reference::conv_direct_ref;
use longvec_cnn::prelude::*;

fn main() {
    let p = ConvParams { in_c: 128, in_h: 40, in_w: 40, out_c: 128, k: 3, stride: 1, pad: 1 };
    let (m_dim, n_dim, k_dim) = p.gemm_mnk();
    println!(
        "conv {}x{}x{} -> {} channels, 3x3 stride 1 ({} Mflop direct; Winograd does {:.2}x fewer multiplies)\n",
        p.in_c, p.in_h, p.in_w, p.out_c,
        p.flops() / 1_000_000,
        f6x3().mult_reduction(),
    );

    // --- im2col + BLIS-like 6-loop GEMM ---
    let mut machine = Machine::new(MachineConfig::a64fx());
    let input = Tensor::random(&mut machine, Shape::new(p.in_c, p.in_h, p.in_w), 3);
    let weights = Matrix::random(&mut machine, m_dim, k_dim, 4);
    let col = machine.mem.alloc(p.workspace_words());
    let out = machine.mem.alloc(m_dim * n_dim);
    let ws = GemmWorkspace::alloc(&mut machine, BlockSizes::TABLE2_BEST);
    machine.reset_timing();
    conv_im2col_gemm(
        &mut machine,
        GemmVariant::opt6(),
        &p,
        &input,
        weights.buf,
        col,
        out,
        Some(&ws),
    );
    let gemm_cycles = machine.cycles();
    let want = conv_direct_ref(&p, &input.to_host(&machine), &weights.to_host(&machine));
    assert!(approx_eq(machine.mem.slice(out), &want, 1e-3, 1e-3));
    println!("im2col+GEMM (6-loop): {gemm_cycles} cycles");
    for (phase, c) in machine.phases.breakdown() {
        println!("   {:<16} {:>12}", phase.name(), c);
    }

    // --- Winograd F(6x6, 3x3), inter-tile channel parallel ---
    let mut machine = Machine::new(MachineConfig::a64fx());
    let input = Tensor::random(&mut machine, Shape::new(p.in_c, p.in_h, p.in_w), 3);
    let weights = Matrix::random(&mut machine, m_dim, k_dim, 4);
    let out = machine.mem.alloc(m_dim * n_dim);
    let mut plan = WinogradPlan::new(&mut machine, p, weights.buf);
    machine.reset_timing(); // the weight transform above is offline (§VII-A)
    winograd_conv_vla(&mut machine, &mut plan, &input, out);
    let wino_cycles = machine.cycles();
    assert!(approx_eq(machine.mem.slice(out), &want, 5e-3, 5e-3));
    println!("\nWinograd F(6,3):      {wino_cycles} cycles");
    for (phase, c) in machine.phases.breakdown() {
        println!("   {:<16} {:>12}", phase.name(), c);
    }

    println!(
        "\nWinograd speedup: {:.2}x (paper §VII-A: ~2.4x for 3x3 stride-1 layers)",
        gemm_cycles as f64 / wino_cycles as f64
    );
    println!("Both algorithms verified against direct convolution.");
}
