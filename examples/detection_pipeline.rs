//! End-to-end object-detection pipeline: simulate YOLOv3-tiny inference,
//! decode both detection heads, and run non-maximum suppression — the full
//! path from input image to boxes (with synthetic weights, so the boxes are
//! arbitrary; the point is exercising the complete flow).
//!
//! ```sh
//! cargo run --release --example detection_pipeline
//! ```

use longvec_cnn::nn::network::estimate_arena_words;
use longvec_cnn::nn::{decode_yolo_head, nms, yolov3_tiny, LayerSpec, YOLOV3_ANCHORS};
use longvec_cnn::prelude::*;

fn main() {
    let input_hw = 160;
    let (specs, shape) = yolov3_tiny(input_hw);
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let mut cfg = MachineConfig::rvv_gem5(4096, 8, 1 << 20);
    cfg.arena_mib = (estimate_arena_words(&specs, shape, &policy) * 4 / (1 << 20) + 32).max(64);
    let mut machine = Machine::new(cfg);
    let mut net = Network::build(&mut machine, &specs, shape, policy, 42);
    machine.reset_timing();

    let image = host_random(shape.len(), 1234);
    let report = net.run(&mut machine, &image);
    println!("inference: {} cycles ({} Mflop)\n", report.cycles, report.flops() / 1_000_000);

    // tiny-YOLO heads use anchor triples (3,4,5) and (0,1,2) of the tiny
    // anchor set; the standard YOLOv3 anchors are close enough for a
    // synthetic-weight demo.
    let head_anchors = [
        [YOLOV3_ANCHORS[6], YOLOV3_ANCHORS[7], YOLOV3_ANCHORS[8]],
        [YOLOV3_ANCHORS[3], YOLOV3_ANCHORS[4], YOLOV3_ANCHORS[5]],
    ];
    let mut detections = Vec::new();
    let mut head = 0;
    for (i, l) in report.layers.iter().enumerate() {
        if matches!(net.layers[i].spec, LayerSpec::Yolo) {
            let data = net.layers[i].out.to_host(&machine);
            let dets = decode_yolo_head(&data, l.out_shape, &head_anchors[head], input_hw, 0.5);
            println!(
                "head {head} ({}x{} grid): {} raw detections above threshold",
                l.out_shape.h,
                l.out_shape.w,
                dets.len()
            );
            detections.extend(dets);
            head += 1;
        }
    }
    let kept = nms(detections, 0.45);
    println!("\nafter NMS: {} boxes (top 5):", kept.len());
    for d in kept.iter().take(5) {
        println!(
            "  class {:>2}  score {:.2}  box ({:.2}, {:.2}) {:.2}x{:.2}",
            d.class, d.score, d.x, d.y, d.w, d.h
        );
    }
    println!("\n(synthetic weights: box contents are arbitrary, the pipeline is real)");
}
