//! A miniature co-design study: sweep vector length x L2 capacity on the
//! RISC-V Vector machine for a YOLOv3 prefix and print the resulting design
//! grid — the methodology behind Figs. 6 and 7 in one program.
//!
//! ```sh
//! cargo run --release --example codesign_sweep
//! ```

use longvec_cnn::prelude::*;

fn main() {
    let workload = Workload {
        model: ModelId::Yolov3,
        input_hw: scaled_input(ModelId::Yolov3, 8),
        layer_limit: Some(10),
    };
    let policy = ConvPolicy::gemm_only(GemmVariant::opt3());
    let vlens = [512usize, 2048, 8192];
    let l2s = [1usize << 20, 16 << 20, 256 << 20];

    println!("co-design grid: {} | cycles (speedup vs 512b/1MB)\n", workload.describe());
    print!("{:>9} |", "VL \\ L2");
    for l2 in l2s {
        print!(" {:>16}", format!("{}MB", l2 >> 20));
    }
    println!();
    let mut base = None;
    for vlen in vlens {
        print!("{vlen:>8}b |");
        for l2 in l2s {
            let hw = HwTarget::RvvGem5 { vlen_bits: vlen, lanes: 8, l2_bytes: l2 };
            let s = Experiment::new(hw, policy, workload).run();
            let b = *base.get_or_insert(s.cycles);
            print!(" {:>9} ({:.2}x)", s.cycles / 1000, b as f64 / s.cycles as f64);
        }
        println!();
    }
    println!("\n(cycles in thousands; longer vectors + larger caches compound, §VI-B)");
}
