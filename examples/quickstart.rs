//! Quickstart: run one convolutional layer on a simulated long-vector
//! machine with each GEMM variant of the paper and compare cycle counts and
//! correctness against the host reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use longvec_cnn::kernels::gemm::GemmWorkspace;
use longvec_cnn::kernels::reference::conv_direct_ref;
use longvec_cnn::prelude::*;

fn main() {
    // One mid-network YOLOv3-like layer.
    let p = ConvParams { in_c: 64, in_h: 38, in_w: 38, out_c: 128, k: 3, stride: 1, pad: 1 };
    let (m_dim, n_dim, k_dim) = p.gemm_mnk();
    println!(
        "layer: {}x{}x{} conv {} 3x3 -> GEMM M={m_dim} N={n_dim} K={k_dim} ({} Mflop)\n",
        p.in_c,
        p.in_h,
        p.in_w,
        p.out_c,
        p.flops() / 1_000_000
    );

    println!("{:<44} {:>14} {:>9}", "configuration", "cycles", "vs naive");
    let mut baseline = None;
    for (label, variant, vlen) in [
        ("RVV 2048b, naive GEMM (Fig. 1)", GemmVariant::Naive, 2048),
        ("RVV 2048b, optimized 3-loop (Fig. 2)", GemmVariant::opt3(), 2048),
        ("RVV 2048b, BLIS-like 6-loop (Fig. 3)", GemmVariant::opt6(), 2048),
        ("RVV 16384b, optimized 3-loop", GemmVariant::opt3(), 16384),
    ] {
        let mut machine = Machine::new(MachineConfig::rvv_gem5(vlen, 8, 1 << 20));
        let input = Tensor::random(&mut machine, Shape::new(p.in_c, p.in_h, p.in_w), 7);
        let weights = Matrix::random(&mut machine, m_dim, k_dim, 8);
        let col = machine.mem.alloc(p.workspace_words());
        let out = machine.mem.alloc(m_dim * n_dim);
        let ws = match variant {
            GemmVariant::Opt6 { blocks, .. } => Some(GemmWorkspace::alloc(&mut machine, blocks)),
            _ => None,
        };
        machine.reset_timing();
        conv_im2col_gemm(&mut machine, variant, &p, &input, weights.buf, col, out, ws.as_ref());

        // The simulation is functional: verify against the host reference.
        let want = conv_direct_ref(&p, &input.to_host(&machine), &weights.to_host(&machine));
        assert!(
            approx_eq(machine.mem.slice(out), &want, 1e-3, 1e-3),
            "simulated kernel diverged from the reference"
        );

        let cycles = machine.cycles();
        let base = *baseline.get_or_insert(cycles);
        println!("{label:<44} {cycles:>14} {:>8.1}x", base as f64 / cycles as f64);
    }
    println!("\nAll variants verified bit-level against direct convolution.");
}
